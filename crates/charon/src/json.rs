//! Hand-rolled flat-JSON encoding and parsing.
//!
//! The workspace deliberately has no `serde_json` (the vendored `serde`
//! is a marker-trait stub), so every machine-readable surface — the
//! [`crate::telemetry`] JSONL trace stream, the bench `BENCH_*.json`
//! files, and the verification server's newline-delimited protocol —
//! shares this one module instead of growing private dialects.
//!
//! The supported shape is a single flat object whose values are numbers,
//! strings, or arrays of numbers:
//!
//! ```text
//! {"event": "attack", "evals": 42, "best_objective": "-inf", "layer_seconds": [0.5, 0.25]}
//! ```
//!
//! Non-finite floats have no JSON spelling, so they are encoded as the
//! strings `"inf"`, `"-inf"`, and `"nan"` and decoded back by
//! [`Fields::f64_field`]. [`ObjectBuilder`] composes objects in insertion
//! order; [`parse_flat_object`] reads them back.

/// Encodes an `f64` as a JSON token, mapping non-finite values to the
/// strings `"inf"`, `"-inf"`, and `"nan"` (plain JSON has no spelling
/// for them).
pub fn json_f64(v: f64) -> String {
    if v.is_nan() {
        "\"nan\"".to_string()
    } else if v == f64::INFINITY {
        "\"inf\"".to_string()
    } else if v == f64::NEG_INFINITY {
        "\"-inf\"".to_string()
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        format!("{v:?}")
    }
}

/// Escapes a string for a JSON literal (quotes, backslashes, control
/// characters).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Incremental builder for one flat JSON object, preserving insertion
/// order (the first field is conventionally the discriminator, e.g.
/// `"event"` or `"response"`).
#[derive(Debug, Clone)]
pub struct ObjectBuilder {
    out: String,
    empty: bool,
}

impl ObjectBuilder {
    /// Starts an empty object.
    pub fn new() -> Self {
        ObjectBuilder {
            out: "{".to_string(),
            empty: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.empty {
            self.out.push_str(", ");
        }
        self.empty = false;
        self.out.push_str(&json_str(key));
        self.out.push_str(": ");
    }

    /// Appends a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.out.push_str(&json_str(value));
        self
    }

    /// Appends a float field (non-finite values encode as strings).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        self.out.push_str(&json_f64(value));
        self
    }

    /// Appends an unsigned integer field (serialized without a decimal
    /// point).
    pub fn int(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        self.out.push_str(&value.to_string());
        self
    }

    /// Appends an array-of-numbers field.
    pub fn arr(mut self, key: &str, values: &[f64]) -> Self {
        self.key(key);
        let items: Vec<String> = values.iter().map(|v| json_f64(*v)).collect();
        self.out.push('[');
        self.out.push_str(&items.join(", "));
        self.out.push(']');
        self
    }

    /// Finishes the object, returning the JSON text (no trailing
    /// newline).
    pub fn build(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for ObjectBuilder {
    fn default() -> Self {
        ObjectBuilder::new()
    }
}

/// A parsed JSON scalar/array value from a flat object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A JSON number.
    Num(f64),
    /// A JSON string.
    Str(String),
    /// An array of numbers (non-finite encoded items already decoded).
    Arr(Vec<f64>),
}

/// The parsed `key: value` pairs of one flat object, in document order.
#[derive(Debug, Clone)]
pub struct Fields(pub(crate) Vec<(String, JsonValue)>);

impl Fields {
    /// The value of `key`, if present.
    pub fn opt(&self, key: &str) -> Option<&JsonValue> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The value of a required `key`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing field.
    pub fn get(&self, key: &str) -> Result<&JsonValue, String> {
        self.opt(key)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    /// A required string field.
    ///
    /// # Errors
    ///
    /// Returns a message if the field is missing or not a string.
    pub fn str_field(&self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            JsonValue::Str(s) => Ok(s.clone()),
            other => Err(format!("field {key:?} is not a string: {other:?}")),
        }
    }

    /// An optional string field (`None` when absent).
    ///
    /// # Errors
    ///
    /// Returns a message if the field is present but not a string.
    pub fn opt_str(&self, key: &str) -> Result<Option<String>, String> {
        match self.opt(key) {
            None => Ok(None),
            Some(JsonValue::Str(s)) => Ok(Some(s.clone())),
            Some(other) => Err(format!("field {key:?} is not a string: {other:?}")),
        }
    }

    /// A required numeric field; the strings `"inf"`, `"-inf"` and
    /// `"nan"` decode to the corresponding non-finite floats.
    ///
    /// # Errors
    ///
    /// Returns a message if the field is missing or not a number.
    pub fn f64_field(&self, key: &str) -> Result<f64, String> {
        match self.get(key)? {
            JsonValue::Num(v) => Ok(*v),
            JsonValue::Str(s) => decode_nonfinite(s)
                .ok_or_else(|| format!("field {key:?} is not a number: {s:?}")),
            other => Err(format!("field {key:?} is not a number: {other:?}")),
        }
    }

    /// An optional numeric field (`None` when absent).
    ///
    /// # Errors
    ///
    /// Returns a message if the field is present but not a number.
    pub fn opt_f64(&self, key: &str) -> Result<Option<f64>, String> {
        if self.opt(key).is_none() {
            return Ok(None);
        }
        self.f64_field(key).map(Some)
    }

    /// A required non-negative integer field.
    ///
    /// # Errors
    ///
    /// Returns a message if the field is missing, not numeric, negative,
    /// or fractional.
    pub fn usize_field(&self, key: &str) -> Result<usize, String> {
        let v = self.f64_field(key)?;
        if v >= 0.0 && v.fract() == 0.0 && v <= usize::MAX as f64 {
            Ok(v as usize)
        } else {
            Err(format!("field {key:?} is not a non-negative integer: {v}"))
        }
    }

    /// An optional non-negative integer field (`None` when absent).
    ///
    /// # Errors
    ///
    /// As [`Fields::usize_field`] when the field is present.
    pub fn opt_usize(&self, key: &str) -> Result<Option<usize>, String> {
        if self.opt(key).is_none() {
            return Ok(None);
        }
        self.usize_field(key).map(Some)
    }

    /// A required array-of-numbers field.
    ///
    /// # Errors
    ///
    /// Returns a message if the field is missing or not an array.
    pub fn arr_field(&self, key: &str) -> Result<Vec<f64>, String> {
        match self.get(key)? {
            JsonValue::Arr(v) => Ok(v.clone()),
            other => Err(format!("field {key:?} is not an array: {other:?}")),
        }
    }
}

pub(crate) fn decode_nonfinite(s: &str) -> Option<f64> {
    match s {
        "inf" => Some(f64::INFINITY),
        "-inf" => Some(f64::NEG_INFINITY),
        "nan" => Some(f64::NAN),
        _ => None,
    }
}

/// Parses one flat JSON object `{"k": v, ...}` where values are numbers,
/// strings, or arrays of numbers — the only shapes [`ObjectBuilder`]
/// emits.
///
/// # Errors
///
/// Returns a message describing the first structural problem (bad
/// delimiter, unterminated string, trailing content, ...).
pub fn parse_flat_object(line: &str) -> Result<Fields, String> {
    let mut chars = line.trim().char_indices().peekable();
    let text = line.trim();
    let expect = |chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
                  want: char|
     -> Result<(), String> {
        match chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected {want:?} at byte {i}, found {c:?}")),
            None => Err(format!("expected {want:?}, found end of input")),
        }
    };
    let skip_ws = |chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>| {
        while matches!(chars.peek(), Some((_, c)) if c.is_whitespace()) {
            chars.next();
        }
    };
    fn parse_string(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
    ) -> Result<String, String> {
        match chars.next() {
            Some((_, '"')) => {}
            other => return Err(format!("expected string, found {other:?}")),
        }
        let mut out = String::new();
        loop {
            match chars.next() {
                None => return Err("unterminated string".to_string()),
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = chars
                                .next()
                                .and_then(|(_, c)| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some((_, c)) => out.push(c),
            }
        }
    }
    fn parse_number(
        chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>,
        text: &str,
    ) -> Result<f64, String> {
        let start = chars.peek().map(|(i, _)| *i).unwrap_or(text.len());
        let mut end = start;
        while matches!(
            chars.peek(),
            Some((_, c)) if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E')
        ) {
            end = chars.next().map(|(i, c)| i + c.len_utf8()).unwrap_or(end);
        }
        text[start..end]
            .parse::<f64>()
            .map_err(|e| format!("bad number {:?}: {e}", &text[start..end]))
    }

    expect(&mut chars, '{')?;
    let mut fields = Vec::new();
    skip_ws(&mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
        skip_ws(&mut chars);
        if chars.next().is_some() {
            return Err("trailing content after object".to_string());
        }
        return Ok(Fields(fields));
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        expect(&mut chars, ':')?;
        skip_ws(&mut chars);
        let value = match chars.peek() {
            Some((_, '"')) => JsonValue::Str(parse_string(&mut chars)?),
            Some((_, '[')) => {
                chars.next();
                let mut items = Vec::new();
                skip_ws(&mut chars);
                if matches!(chars.peek(), Some((_, ']'))) {
                    chars.next();
                } else {
                    loop {
                        skip_ws(&mut chars);
                        let item = match chars.peek() {
                            Some((_, '"')) => {
                                let s = parse_string(&mut chars)?;
                                decode_nonfinite(&s)
                                    .ok_or_else(|| format!("bad array item {s:?}"))?
                            }
                            _ => parse_number(&mut chars, text)?,
                        };
                        items.push(item);
                        skip_ws(&mut chars);
                        match chars.next() {
                            Some((_, ',')) => {}
                            Some((_, ']')) => break,
                            other => return Err(format!("bad array separator {other:?}")),
                        }
                    }
                }
                JsonValue::Arr(items)
            }
            _ => JsonValue::Num(parse_number(&mut chars, text)?),
        };
        fields.push((key, value));
        skip_ws(&mut chars);
        match chars.next() {
            Some((_, ',')) => {}
            Some((_, '}')) => break,
            other => return Err(format!("bad object separator {other:?}")),
        }
    }
    skip_ws(&mut chars);
    if chars.next().is_some() {
        return Err("trailing content after object".to_string());
    }
    Ok(Fields(fields))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_output_parses_back() {
        let json = ObjectBuilder::new()
            .str("response", "stats")
            .int("queue_depth", 3)
            .num("hit_rate", 0.5)
            .num("worst", f64::INFINITY)
            .arr("hist", &[1.0, 0.0, 2.0])
            .str("note", "quotes \" and\nnewlines")
            .build();
        let fields = parse_flat_object(&json).unwrap();
        assert_eq!(fields.str_field("response").unwrap(), "stats");
        assert_eq!(fields.usize_field("queue_depth").unwrap(), 3);
        assert_eq!(fields.f64_field("hit_rate").unwrap(), 0.5);
        assert_eq!(fields.f64_field("worst").unwrap(), f64::INFINITY);
        assert_eq!(fields.arr_field("hist").unwrap(), vec![1.0, 0.0, 2.0]);
        assert_eq!(
            fields.str_field("note").unwrap(),
            "quotes \" and\nnewlines"
        );
    }

    #[test]
    fn empty_object_round_trips() {
        let json = ObjectBuilder::new().build();
        assert_eq!(json, "{}");
        assert!(parse_flat_object(&json).unwrap().opt("x").is_none());
    }

    #[test]
    fn optional_accessors_distinguish_absent_from_mistyped() {
        let fields = parse_flat_object("{\"a\": 1, \"b\": \"text\"}").unwrap();
        assert_eq!(fields.opt_usize("a").unwrap(), Some(1));
        assert_eq!(fields.opt_usize("missing").unwrap(), None);
        assert_eq!(fields.opt_str("b").unwrap(), Some("text".to_string()));
        assert_eq!(fields.opt_str("missing").unwrap(), None);
        assert!(fields.opt_usize("b").is_err());
        assert!(fields.opt_str("a").is_err());
    }

    #[test]
    fn rejects_trailing_content_even_after_empty_object() {
        assert!(parse_flat_object("{} extra").is_err());
        assert!(parse_flat_object("{\"a\": 1} extra").is_err());
    }
}
