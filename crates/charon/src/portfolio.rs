//! Portfolio verification: race several policies, first decision wins.
//!
//! Different policies shine on different properties (that is the whole
//! premise of §4). When spare cores are available, a *portfolio* sidesteps
//! the selection problem at deployment time: run one verifier per policy
//! concurrently on the same property, take the first decisive verdict,
//! and cancel the rest cooperatively.
//!
//! The portfolio is sound because each member is sound; it is δ-complete
//! whenever at least one member decides within the budget.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use nn::Network;
use parking_lot::Mutex;

use crate::error::VerifyError;
use crate::policy::Policy;
use crate::verify::{Verdict, Verifier, VerifierConfig};
use crate::RobustnessProperty;

/// A set of policies raced against each other on every property.
#[derive(Clone)]
pub struct PortfolioVerifier {
    policies: Vec<Arc<dyn Policy>>,
    config: VerifierConfig,
    trace: crate::telemetry::SharedSink,
}

impl PortfolioVerifier {
    /// Creates a portfolio from a non-empty list of policies.
    ///
    /// # Panics
    ///
    /// Panics if `policies` is empty.
    pub fn new(policies: Vec<Arc<dyn Policy>>, config: VerifierConfig) -> Self {
        assert!(!policies.is_empty(), "portfolio needs at least one policy");
        PortfolioVerifier {
            policies,
            config,
            trace: crate::telemetry::null_sink(),
        }
    }

    /// Attaches a trace sink shared by every member verifier; events from
    /// different members interleave at event granularity. The default
    /// sink is [`crate::telemetry::NullSink`] (tracing off, zero
    /// overhead).
    #[must_use]
    pub fn with_trace(mut self, sink: crate::telemetry::SharedSink) -> Self {
        self.trace = sink;
        self
    }

    /// Number of member policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Whether the portfolio has no members (never true after
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Verifies a property with all members concurrently; the first
    /// decisive verdict cancels the others.
    ///
    /// A caller-supplied `config.cancel` flag is *composed with*, not
    /// replaced by, the portfolio's internal race-cancellation: setting
    /// the external flag cancels every member, while a member winning the
    /// race never touches the external flag.
    ///
    /// # Panics
    ///
    /// Panics if the problem is malformed or the engine fails in every
    /// member before any decides (see [`PortfolioVerifier::try_verify`]
    /// for the non-panicking API).
    pub fn verify(&self, net: &Network, property: &RobustnessProperty) -> Verdict {
        match self.try_verify(net, property) {
            Ok(verdict) => verdict,
            Err(e) => panic!("verification engine failure: {e}"),
        }
    }

    /// Non-panicking variant of [`PortfolioVerifier::verify`].
    ///
    /// A member that fails with a [`VerifyError`] degrades the portfolio
    /// instead of aborting it: the failure is recorded and the remaining
    /// members keep racing. The first recorded failure is surfaced only
    /// when no member reaches a decisive verdict.
    ///
    /// # Errors
    ///
    /// Returns a structured [`VerifyError`] when no member decides and at
    /// least one member failed (malformed problem, double panic, numeric
    /// poisoning).
    pub fn try_verify(
        &self,
        net: &Network,
        property: &RobustnessProperty,
    ) -> Result<Verdict, VerifyError> {
        let external = self.config.cancel.clone();
        let cancel = Arc::new(AtomicBool::new(false));
        let winner: Mutex<Option<Verdict>> = Mutex::new(None);
        let error: Mutex<Option<VerifyError>> = Mutex::new(None);
        let members_done = AtomicUsize::new(0);
        let members = self.policies.len();

        let scope_result = crossbeam::scope(|scope| {
            for policy in &self.policies {
                let mut config = self.config.clone();
                config.cancel = Some(Arc::clone(&cancel));
                let policy = Arc::clone(policy);
                let cancel = &cancel;
                let winner = &winner;
                let error = &error;
                let members_done = &members_done;
                let trace = Arc::clone(&self.trace);
                scope.spawn(move |_| {
                    let verifier = Verifier::new(policy, config).with_trace(trace);
                    match verifier.try_verify_run(net, property) {
                        Ok(run) => match run.verdict {
                            Verdict::Verified | Verdict::Refuted(_) => {
                                let mut slot = winner.lock();
                                if slot.is_none() {
                                    *slot = Some(run.verdict);
                                }
                                cancel.store(true, Ordering::Relaxed);
                            }
                            Verdict::ResourceLimit => {}
                        },
                        // A broken member is a non-winning member, not a
                        // process abort: record the first failure and let
                        // the rest of the race continue.
                        Err(e) => {
                            let mut slot = error.lock();
                            if slot.is_none() {
                                *slot = Some(e);
                            }
                        }
                    }
                    members_done.fetch_add(1, Ordering::Release);
                });
            }
            if let Some(external) = external {
                // Watcher: forward the caller's cancellation into the
                // members' shared flag, exiting once the race is over.
                let cancel = &cancel;
                let members_done = &members_done;
                scope.spawn(move |_| loop {
                    if cancel.load(Ordering::Relaxed)
                        || members_done.load(Ordering::Acquire) >= members
                    {
                        return;
                    }
                    if external.load(Ordering::Relaxed) {
                        cancel.store(true, Ordering::Relaxed);
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                });
            }
        });
        if scope_result.is_err() {
            // Members are panic-isolated inside the verifier, so this is a
            // bug in the portfolio driver itself.
            return Err(VerifyError::WorkerPanic {
                message: "portfolio member panicked outside the isolation boundary".to_string(),
            });
        }

        match winner.into_inner() {
            Some(verdict) => Ok(verdict),
            None => match error.into_inner() {
                Some(e) => Err(e),
                None => Ok(Verdict::ResourceLimit),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{DomainSelection, FixedPolicy, LinearPolicy};
    use domains::{Bounds, DomainChoice};
    use std::time::Duration;

    fn config() -> VerifierConfig {
        VerifierConfig {
            timeout: Duration::from_secs(15),
            ..VerifierConfig::default()
        }
    }

    fn mixed_portfolio() -> PortfolioVerifier {
        PortfolioVerifier::new(
            vec![
                Arc::new(LinearPolicy::default()),
                Arc::new(FixedPolicy::new(DomainChoice::interval())),
                Arc::new(FixedPolicy::with_selection(DomainSelection::DeepPoly)),
            ],
            config(),
        )
    }

    #[test]
    fn portfolio_verifies_and_refutes() {
        let net = nn::samples::xor_network();
        let robust = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
        assert_eq!(mixed_portfolio().verify(&net, &robust), Verdict::Verified);

        let broken = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        match mixed_portfolio().verify(&net, &broken) {
            Verdict::Refuted(cex) => {
                assert!(broken.region().contains(&cex.point));
                assert!(cex.objective <= 1e-9);
            }
            other => panic!("expected refutation, got {other:?}"),
        }
    }

    #[test]
    fn portfolio_beats_its_weakest_member() {
        // A portfolio containing an interval-only policy still verifies
        // Example 2.3, which intervals alone cannot prove without many
        // splits, because the stronger members win the race.
        let net = nn::samples::example_2_3_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        assert_eq!(mixed_portfolio().verify(&net, &prop), Verdict::Verified);
    }

    #[test]
    fn single_member_portfolio_matches_sequential() {
        let net = nn::samples::example_2_2_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![-1.0], vec![2.0]), 1);
        let solo = PortfolioVerifier::new(vec![Arc::new(LinearPolicy::default())], config());
        let sequential = Verifier::new(Arc::new(LinearPolicy::default()), config());
        assert_eq!(
            solo.verify(&net, &prop).is_refuted(),
            sequential.verify(&net, &prop).is_refuted()
        );
    }

    #[test]
    #[should_panic(expected = "at least one policy")]
    fn empty_portfolio_panics() {
        PortfolioVerifier::new(vec![], config());
    }

    #[test]
    fn member_engine_failure_is_an_error_not_a_process_abort() {
        // A 1-d property against a 2-input network fails validation in
        // every member. The portfolio must surface the structured error
        // through try_verify instead of panicking inside crossbeam::scope
        // and taking the process down.
        let net = nn::samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0], vec![1.0]), 1);
        match mixed_portfolio().try_verify(&net, &prop) {
            Err(crate::VerifyError::MalformedModel { reason }) => {
                assert!(reason.contains("dimension"), "reason: {reason}");
            }
            other => panic!("expected malformed-model error, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "verification engine failure")]
    fn verify_panics_with_structured_message_on_engine_failure() {
        let net = nn::samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0], vec![1.0]), 1);
        mixed_portfolio().verify(&net, &prop);
    }

    #[test]
    fn try_verify_matches_verify_on_decidable_properties() {
        let net = nn::samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
        assert_eq!(
            mixed_portfolio().try_verify(&net, &prop).unwrap(),
            Verdict::Verified
        );
    }

    #[test]
    fn external_cancel_flag_is_composed_not_overwritten() {
        use crate::faults::{FaultPlan, FaultSite};

        // A verifiable property that interval-only members need several
        // regions for (no member can decide on its first region).
        let net = nn::samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
        let external = Arc::new(AtomicBool::new(true));
        let mut cfg = config();
        cfg.cancel = Some(Arc::clone(&external));
        // Delay each member's first region so the watcher thread forwards
        // the (pre-set) external flag before any member reaches its
        // second region boundary.
        cfg.faults = Some(Arc::new(
            FaultPlan::new()
                .inject(FaultSite::Delay, 0)
                .inject(FaultSite::Delay, 1),
        ));
        let portfolio = PortfolioVerifier::new(
            vec![
                Arc::new(FixedPolicy::new(DomainChoice::interval())),
                Arc::new(FixedPolicy::new(DomainChoice::interval())),
            ],
            cfg,
        );
        // Before the fix the portfolio overwrote `cancel` with its own
        // flag, so a pre-set external cancellation was silently ignored
        // and the members ran to a decision.
        assert_eq!(portfolio.verify(&net, &prop), Verdict::ResourceLimit);
    }
}
