//! The training phase (§4.2): learning policy parameters θ with Bayesian
//! optimization.
//!
//! Given a corpus of training problems, the objective scores a candidate
//! θ by running the verifier on every problem with a per-problem time
//! limit `t` and summing costs: solve time for solved problems, `p · t`
//! for unsolved ones (the paper uses `p = 2`). Bayesian optimization
//! maximizes the negated total cost.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bayesopt::{BayesOpt, BayesOptConfig};
use nn::Network;
use parking_lot::Mutex;

use crate::policy::{LinearPolicy, NUM_PARAMS};
use crate::verify::{Verdict, Verifier, VerifierConfig};
use crate::RobustnessProperty;

/// A training problem: a network plus a robustness property over it.
#[derive(Debug, Clone)]
pub struct TrainingProblem {
    /// The network.
    pub net: Network,
    /// The property to verify or refute.
    pub property: RobustnessProperty,
}

/// Configuration of the policy-training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Per-problem time limit `t`.
    pub time_limit: Duration,
    /// Penalty factor `p` for unsolved problems (the paper uses 2).
    pub penalty: f64,
    /// Bayesian-optimization settings.
    pub bayesopt: BayesOptConfig,
    /// Worker threads for evaluating the training set (0 = all CPUs).
    pub threads: usize,
    /// Verifier configuration template (timeout is overwritten by
    /// `time_limit`).
    pub verifier: VerifierConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            time_limit: Duration::from_millis(500),
            penalty: 2.0,
            bayesopt: BayesOptConfig {
                iterations: 20,
                initial_design: 8,
                ..BayesOptConfig::default()
            },
            threads: 0,
            verifier: VerifierConfig::default(),
            seed: 0,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// The learned policy.
    pub policy: LinearPolicy,
    /// Objective value of the learned policy (negated total cost, in
    /// seconds).
    pub score: f64,
    /// Objective value of the default (hand-initialized) policy, for
    /// comparison.
    pub baseline_score: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
}

/// Scores a policy on the training corpus: `-Σ cost(s)` where `cost` is
/// solve time for solved problems and `penalty * time_limit` otherwise.
pub fn score_policy(
    policy: &LinearPolicy,
    problems: &[TrainingProblem],
    config: &TrainConfig,
) -> f64 {
    let mut verifier_config = config.verifier.clone();
    verifier_config.timeout = config.time_limit;
    let policy = Arc::new(policy.clone());
    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get())
    } else {
        config.threads
    };

    let next = AtomicUsize::new(0);
    let total_cost = Mutex::new(0.0f64);
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(problems.len().max(1)) {
            let next = &next;
            let total_cost = &total_cost;
            let policy = Arc::clone(&policy);
            let verifier_config = verifier_config.clone();
            scope.spawn(move |_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= problems.len() {
                    return;
                }
                let problem = &problems[idx];
                let verifier = Verifier::new(
                    policy.clone() as Arc<dyn crate::policy::Policy>,
                    verifier_config.clone(),
                );
                let start = std::time::Instant::now();
                let verdict = verifier.verify(&problem.net, &problem.property);
                let elapsed = start.elapsed();
                let cost = match verdict {
                    Verdict::Verified | Verdict::Refuted(_) => elapsed.as_secs_f64(),
                    Verdict::ResourceLimit => config.penalty * config.time_limit.as_secs_f64(),
                };
                *total_cost.lock() += cost;
            });
        }
    })
    .expect("scoring thread panicked");

    -total_cost.into_inner()
}

/// Learns a verification policy from training problems using Bayesian
/// optimization over the θ parameter space.
///
/// # Panics
///
/// Panics if `problems` is empty.
pub fn train_policy(problems: &[TrainingProblem], config: &TrainConfig) -> TrainOutcome {
    assert!(!problems.is_empty(), "need at least one training problem");

    let baseline = LinearPolicy::default();
    let baseline_score = score_policy(&baseline, problems, config);

    let evaluations = AtomicUsize::new(0);
    let bounds = vec![(-1.0, 1.0); NUM_PARAMS];
    let optimizer = BayesOpt::new(bounds, config.bayesopt.clone(), config.seed);
    let result = optimizer.run(|params| {
        evaluations.fetch_add(1, Ordering::Relaxed);
        let policy = LinearPolicy::from_params(params.to_vec());
        score_policy(&policy, problems, config)
    });

    // Keep whichever of {learned, hand-initialized} scores better; on a
    // tie prefer the hand-initialized policy (it generalizes by
    // construction, while tied BO parameters are arbitrary).
    let (policy, score) = if result.best_value > baseline_score {
        (
            LinearPolicy::from_params(result.best_input.clone()),
            result.best_value,
        )
    } else {
        (baseline, baseline_score)
    };

    TrainOutcome {
        policy,
        score,
        baseline_score,
        evaluations: evaluations.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domains::Bounds;
    use nn::samples;

    fn tiny_corpus() -> Vec<TrainingProblem> {
        vec![
            TrainingProblem {
                net: samples::xor_network(),
                property: RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1),
            },
            TrainingProblem {
                net: samples::example_2_2_network(),
                property: RobustnessProperty::new(Bounds::new(vec![-1.0], vec![1.0]), 1),
            },
            TrainingProblem {
                net: samples::example_2_3_network(),
                property: RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1),
            },
        ]
    }

    #[test]
    fn score_is_negative_cost() {
        let config = TrainConfig::default();
        let score = score_policy(&LinearPolicy::default(), &tiny_corpus(), &config);
        assert!(score <= 0.0);
        // All three problems are easy: cost must be far below the penalty
        // ceiling 3 * p * t.
        let ceiling = 3.0 * config.penalty * config.time_limit.as_secs_f64();
        assert!(score > -ceiling, "score {score} at penalty ceiling");
    }

    #[test]
    fn training_improves_or_matches_baseline() {
        let config = TrainConfig {
            bayesopt: BayesOptConfig {
                iterations: 3,
                initial_design: 3,
                ..BayesOptConfig::default()
            },
            ..TrainConfig::default()
        };
        let outcome = train_policy(&tiny_corpus(), &config);
        assert!(outcome.score >= outcome.baseline_score);
        assert!(outcome.evaluations >= 6);
        // The learned policy still verifies the corpus.
        let verifier = Verifier::with_policy(Arc::new(outcome.policy));
        for p in tiny_corpus() {
            assert!(verifier.verify(&p.net, &p.property).is_verified());
        }
    }
}
