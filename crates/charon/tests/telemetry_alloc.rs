//! Zero-overhead guarantee for disabled tracing.
//!
//! The telemetry layer promises that with the default [`charon::NullSink`]
//! no trace event is ever *constructed*: the `emit` guard checks
//! `enabled()` before invoking the builder closure, so the hot step loop
//! pays one branch and zero allocations. This suite pins that guarantee
//! with a counting global allocator.
//!
//! The counter is thread-local (const-initialized, so the TLS access
//! itself never allocates), which keeps the measurements immune to other
//! tests running concurrently in the same process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

use charon::telemetry::{emit, SharedSink};
use charon::{
    NullSink, RobustnessProperty, SummarySink, TraceEvent, Verdict, Verifier,
};
use domains::Bounds;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations on this thread while running `f`.
fn count_allocs<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    let result = f();
    (ALLOCS.with(Cell::get) - before, result)
}

/// The event builders below are the expensive kind the step loop uses:
/// they allocate a `String` and a `Vec` when invoked.
fn expensive_event(i: usize) -> TraceEvent {
    TraceEvent::Propagation {
        ordinal: i,
        domain: format!("(Z, {i})"),
        seconds: 0.001,
        outcome: "proved".to_string(),
        layer_seconds: vec![0.0005; 8],
    }
}

#[test]
fn emit_through_null_sink_is_allocation_free() {
    let sink = NullSink;
    let (allocs, ()) = count_allocs(|| {
        for i in 0..100_000 {
            emit(&sink, || expensive_event(i));
        }
    });
    assert_eq!(
        allocs, 0,
        "disabled tracing must not build events or allocate"
    );

    // Sanity check on the methodology: the same loop through an enabled
    // sink does allocate (the builder runs), so the counter is live.
    let enabled = SummarySink::new();
    let (allocs, ()) = count_allocs(|| {
        for i in 0..100 {
            emit(&enabled, || expensive_event(i));
        }
    });
    assert!(allocs > 0, "counting allocator failed to observe anything");
}

#[test]
fn null_sink_step_loop_pays_no_tracing_allocations() {
    let net = nn::samples::xor_network();
    let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    let verify = |sink: Option<SharedSink>| {
        let mut verifier = Verifier::default();
        if let Some(sink) = sink {
            verifier = verifier.with_trace(sink);
        }
        let run = verifier.try_verify_run(&net, &prop).unwrap();
        assert_eq!(run.verdict, Verdict::Verified);
    };

    // Warm-up, then measure: the sequential verifier is deterministic, so
    // two untraced runs allocate identically. If an event were built
    // unconditionally somewhere in the step loop, the traced run below
    // could not exceed them.
    verify(None);
    let (null_allocs, ()) = count_allocs(|| verify(None));
    let (null_again, ()) = count_allocs(|| verify(None));
    assert_eq!(
        null_allocs, null_again,
        "untraced verification is allocation-deterministic"
    );

    let (traced_allocs, ()) = count_allocs(|| verify(Some(Arc::new(SummarySink::new()))));
    assert!(
        traced_allocs > null_allocs,
        "tracing allocations must be conditional on an enabled sink \
         (untraced {null_allocs}, traced {traced_allocs})"
    );
}
