//! Chaos suite: deterministic fault injection against the verifiers.
//!
//! Each test drives the sequential and parallel engines with a
//! [`FaultPlan`] and checks the acceptance properties of the failure
//! model: no injection aborts the process, no injection flips a verdict
//! (a fault degrades precision or pauses the run, never fabricates
//! `Verified`/`Refuted`), and cancelled runs resume from their checkpoint
//! to the baseline verdict.

use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Once};

use charon::faults::{FaultPlan, FaultSite};
use charon::parallel::ParallelVerifier;
use charon::policy::{FixedPolicy, LinearPolicy, Policy};
use charon::{
    BudgetKind, RobustnessProperty, Verdict, Verifier, VerifierConfig,
};
use domains::{Bounds, DomainChoice};
use nn::{samples, Network};

/// Suppresses the default panic printout for panics this suite injects on
/// purpose, keeping real failures loud.
fn quiet_injected_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let message = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| info.payload().downcast_ref::<String>().cloned())
                .unwrap_or_default();
            if message.contains("injected fault") || message.contains("chaos policy") {
                return;
            }
            previous(info);
        }));
    });
}

/// The benchmark cases: (name, network, property) with both verdicts
/// represented.
fn cases() -> Vec<(&'static str, Network, RobustnessProperty)> {
    vec![
        (
            "xor-robust",
            samples::xor_network(),
            RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1),
        ),
        (
            "xor-refuted",
            samples::xor_network(),
            RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1),
        ),
        (
            "example-2-3",
            samples::example_2_3_network(),
            RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1),
        ),
    ]
}

/// Verdict equality up to the concrete counterexample point: faults may
/// legitimately change *which* δ-counterexample is found, never whether
/// one is found.
fn same_kind(a: &Verdict, b: &Verdict) -> bool {
    matches!(
        (a, b),
        (Verdict::Verified, Verdict::Verified)
            | (Verdict::Refuted(_), Verdict::Refuted(_))
            | (Verdict::ResourceLimit, Verdict::ResourceLimit)
    )
}

fn check_refutation(net: &Network, prop: &RobustnessProperty, verdict: &Verdict) {
    if let Verdict::Refuted(cex) = verdict {
        assert!(
            prop.region().contains(&cex.point),
            "counterexample escaped the region: {cex:?}"
        );
        assert!(cex.point.iter().all(|v| v.is_finite()));
        assert!(cex.objective.is_finite());
        assert_eq!(cex.objective, net.objective(&cex.point, prop.target()));
    }
}

#[test]
fn every_injection_site_preserves_the_verdict() {
    quiet_injected_panics();
    let sites = [
        FaultSite::WorkerPanic,
        FaultSite::AttackNan,
        FaultSite::TransformerNan,
        FaultSite::Delay,
    ];
    for (name, net, prop) in cases() {
        let baseline = Verifier::default().verify(&net, &prop);
        for site in sites {
            for region_index in [0, 1, 3] {
                let plan = Arc::new(FaultPlan::new().inject(site, region_index));
                let config = VerifierConfig {
                    faults: Some(Arc::clone(&plan)),
                    ..VerifierConfig::default()
                };

                let seq = Verifier::new(Arc::new(LinearPolicy::default()), config.clone())
                    .verify(&net, &prop);
                assert!(
                    same_kind(&seq, &baseline),
                    "{name}: sequential verdict flipped under {site:?}@{region_index}: \
                     {seq:?} vs baseline {baseline:?}"
                );
                check_refutation(&net, &prop, &seq);

                let par_plan = Arc::new(FaultPlan::new().inject(site, region_index));
                let par_config = VerifierConfig {
                    faults: Some(Arc::clone(&par_plan)),
                    ..VerifierConfig::default()
                };
                let par = ParallelVerifier::new(
                    Arc::new(LinearPolicy::default()),
                    par_config,
                    3,
                )
                .verify(&net, &prop);
                assert!(
                    same_kind(&par, &baseline),
                    "{name}: parallel verdict flipped under {site:?}@{region_index}: \
                     {par:?} vs baseline {baseline:?}"
                );
                check_refutation(&net, &prop, &par);

                // Region 0 always exists, so injections at stages every
                // step reaches must fire. (TransformerNan sits at the
                // analysis stage, which a region already refuted at the
                // δ-check legitimately skips.)
                if region_index == 0 && site != FaultSite::TransformerNan {
                    assert!(plan.all_fired(), "{name}: {site:?}@0 never fired");
                }
            }
        }
    }
}

/// Regression for counterexample validation: a poisoned attack claiming a
/// `-∞` objective at a NaN point must never surface as a refutation.
#[test]
fn poisoned_attack_cannot_fabricate_a_refutation() {
    quiet_injected_panics();
    let net = samples::xor_network();
    let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);

    for threads in [0usize, 3] {
        let config = VerifierConfig {
            faults: Some(Arc::new(FaultPlan::new().inject(FaultSite::AttackNan, 0))),
            ..VerifierConfig::default()
        };
        let verdict = if threads == 0 {
            Verifier::new(Arc::new(LinearPolicy::default()), config).verify(&net, &prop)
        } else {
            ParallelVerifier::new(Arc::new(LinearPolicy::default()), config, threads)
                .verify(&net, &prop)
        };
        assert_eq!(
            verdict,
            Verdict::Verified,
            "bogus NaN counterexample leaked through validation (threads={threads})"
        );
    }
}

/// A mid-run cancellation fault pauses the run with a checkpoint; resuming
/// reaches the baseline verdict without revisiting verified regions.
#[test]
fn cancel_fault_checkpoints_and_resume_reaches_baseline() {
    quiet_injected_panics();
    let net = samples::xor_network();
    let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    let policy = || -> Arc<dyn Policy> { Arc::new(FixedPolicy::new(DomainChoice::interval())) };

    // Baseline: uninjected sequential run.
    let baseline = Verifier::with_policy(policy())
        .try_verify_run(&net, &prop)
        .unwrap();
    assert_eq!(baseline.verdict, Verdict::Verified);
    assert!(baseline.stats.regions > 2, "need a multi-region baseline");

    // Sequential: cancel while processing region 2.
    let config = VerifierConfig {
        cancel: Some(Arc::new(AtomicBool::new(false))),
        faults: Some(Arc::new(FaultPlan::new().inject(FaultSite::Cancel, 2))),
        ..VerifierConfig::default()
    };
    let interrupted = Verifier::new(policy(), config)
        .try_verify_run(&net, &prop)
        .unwrap();
    assert_eq!(interrupted.verdict, Verdict::ResourceLimit);
    assert_eq!(interrupted.limit, Some(BudgetKind::Cancelled));
    let ckpt = interrupted.checkpoint.expect("cancelled run checkpoints");

    let resumed = Verifier::with_policy(policy()).resume(&net, &ckpt).unwrap();
    assert_eq!(resumed.verdict, baseline.verdict);
    assert_eq!(
        interrupted.stats.regions + resumed.stats.regions,
        baseline.stats.regions,
        "resume revisited already-verified regions"
    );

    // Parallel: same story, minus the exact region accounting (scheduling
    // may differ), resumed on the parallel engine too.
    let par_config = VerifierConfig {
        cancel: Some(Arc::new(AtomicBool::new(false))),
        faults: Some(Arc::new(FaultPlan::new().inject(FaultSite::Cancel, 1))),
        ..VerifierConfig::default()
    };
    let par = ParallelVerifier::new(policy(), par_config, 3);
    let interrupted = par.try_verify_run(&net, &prop).unwrap();
    assert_eq!(interrupted.verdict, Verdict::ResourceLimit);
    assert_eq!(interrupted.limit, Some(BudgetKind::Cancelled));
    let ckpt = interrupted.checkpoint.expect("cancelled run checkpoints");
    let clean = ParallelVerifier::new(policy(), VerifierConfig::default(), 3);
    let resumed = clean.resume(&net, &ckpt).unwrap();
    assert_eq!(resumed.verdict, Verdict::Verified);
}

/// A policy whose every decision panics: the degradation ladder must
/// absorb the panic on *every* region and still decide the property on
/// the interval fallback.
#[test]
fn panicking_policy_degrades_to_interval_and_survives() {
    quiet_injected_panics();
    struct PanicPolicy;
    impl Policy for PanicPolicy {
        fn choose_domain(
            &self,
            _ctx: &charon::policy::PolicyContext<'_>,
        ) -> charon::policy::DomainSelection {
            panic!("chaos policy: choose_domain");
        }
        fn choose_split(&self, _ctx: &charon::policy::PolicyContext<'_>) -> charon::policy::SplitPlan {
            panic!("chaos policy: choose_split");
        }
    }

    for (name, net, prop) in cases() {
        let baseline =
            Verifier::with_policy(Arc::new(FixedPolicy::new(DomainChoice::interval())))
                .verify(&net, &prop);
        let seq = Verifier::with_policy(Arc::new(PanicPolicy)).verify(&net, &prop);
        assert!(
            same_kind(&seq, &baseline),
            "{name}: panicking policy changed the verdict: {seq:?} vs {baseline:?}"
        );
        let par = ParallelVerifier::new(Arc::new(PanicPolicy), VerifierConfig::default(), 3)
            .verify(&net, &prop);
        assert!(
            same_kind(&par, &baseline),
            "{name}: panicking policy changed the parallel verdict: {par:?} vs {baseline:?}"
        );
    }
}

/// Several faults at once: a panic, a poisoned transformer, a poisoned
/// attack, and a straggler in the same run still converge to the
/// baseline verdict.
#[test]
fn fault_storm_converges_to_baseline() {
    quiet_injected_panics();
    for (name, net, prop) in cases() {
        let baseline = Verifier::default().verify(&net, &prop);
        let plan = Arc::new(
            FaultPlan::new()
                .inject(FaultSite::WorkerPanic, 0)
                .inject(FaultSite::AttackNan, 1)
                .inject(FaultSite::TransformerNan, 2)
                .inject(FaultSite::Delay, 3),
        );
        let config = VerifierConfig {
            faults: Some(Arc::clone(&plan)),
            ..VerifierConfig::default()
        };
        let seq = Verifier::new(Arc::new(LinearPolicy::default()), config.clone())
            .verify(&net, &prop);
        assert!(
            same_kind(&seq, &baseline),
            "{name}: fault storm flipped sequential verdict: {seq:?} vs {baseline:?}"
        );

        let par_plan = Arc::new(
            FaultPlan::new()
                .inject(FaultSite::WorkerPanic, 0)
                .inject(FaultSite::AttackNan, 1)
                .inject(FaultSite::TransformerNan, 2)
                .inject(FaultSite::Delay, 3),
        );
        let par_config = VerifierConfig {
            faults: Some(par_plan),
            ..VerifierConfig::default()
        };
        let par = ParallelVerifier::new(Arc::new(LinearPolicy::default()), par_config, 3)
            .verify(&net, &prop);
        assert!(
            same_kind(&par, &baseline),
            "{name}: fault storm flipped parallel verdict: {par:?} vs {baseline:?}"
        );
    }
}

/// The acceptance scenario: a run that times out mid-search checkpoints,
/// and resuming verifies a property that a fresh, fully budgeted run also
/// verifies — revisiting no already-verified region.
#[test]
fn timed_out_run_resumes_to_verified() {
    quiet_injected_panics();
    let net = samples::xor_network();
    let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    let verifier = Verifier::with_policy(Arc::new(FixedPolicy::new(DomainChoice::interval())));

    // Fresh run with an ample budget: the reference.
    let fresh = verifier.try_verify_run(&net, &prop).unwrap();
    assert_eq!(fresh.verdict, Verdict::Verified);

    // Same verifier, starved region budget: must stop with a checkpoint.
    let mut starved = verifier.clone();
    starved.config_mut().max_regions = 1;
    let first = starved.try_verify_run(&net, &prop).unwrap();
    assert_eq!(first.verdict, Verdict::ResourceLimit);
    assert_eq!(first.limit, Some(BudgetKind::Regions));
    let ckpt = first.checkpoint.expect("starved run checkpoints");

    // Round-trip the checkpoint through its text format, as the CLI does.
    let ckpt = charon::Checkpoint::from_text(&ckpt.to_text()).unwrap();

    let resumed = verifier.resume(&net, &ckpt).unwrap();
    assert_eq!(resumed.verdict, Verdict::Verified);
    assert_eq!(
        first.stats.regions + resumed.stats.regions,
        fresh.stats.regions,
        "resume revisited already-verified regions"
    );
}

/// Every injected fault must leave a footprint in the trace: a
/// `fault_triggered` event with the site name, observable through a
/// [`charon::SummarySink`] attached to the verifier.
#[test]
fn injected_faults_emit_fault_triggered_events() {
    quiet_injected_panics();
    let net = samples::xor_network();
    let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    for site in [
        FaultSite::WorkerPanic,
        FaultSite::AttackNan,
        FaultSite::TransformerNan,
        FaultSite::Delay,
    ] {
        let sink = Arc::new(charon::SummarySink::new());
        let config = VerifierConfig {
            faults: Some(Arc::new(FaultPlan::new().inject(site, 0))),
            ..VerifierConfig::default()
        };
        let verifier = Verifier::new(Arc::new(LinearPolicy::default()), config)
            .with_trace(Arc::clone(&sink) as _);
        verifier
            .try_verify_run(&net, &prop)
            .expect("injection must degrade, not abort");
        let summary = sink.snapshot();
        assert!(
            summary.faults >= 1,
            "no fault_triggered event for {site:?}: {summary:?}"
        );
        assert!(summary.verdicts == 1, "run must still end in a verdict");
    }
}

/// Idle workers must park on the scheduler condvar, never spin: a
/// straggler fault holding the only region forces the other worker idle,
/// and the merged metrics must account for that idle time as parks. A
/// run with zero pending work must conclude instantly without parking.
#[test]
fn idle_workers_park_instead_of_spinning() {
    quiet_injected_panics();
    let net = samples::xor_network();
    let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    let config = VerifierConfig {
        faults: Some(Arc::new(FaultPlan::new().inject(FaultSite::Delay, 0))),
        ..VerifierConfig::default()
    };
    let run = ParallelVerifier::new(
        Arc::new(FixedPolicy::new(DomainChoice::interval())),
        config,
        2,
    )
    .try_verify_run(&net, &prop)
    .unwrap();
    assert_eq!(run.verdict, Verdict::Verified);
    let m = &run.stats.metrics;
    // While one worker sleeps 25ms inside the injected delay, the other
    // has an empty worklist and exactly one region in flight: its only
    // legal move is a (timed, bounded) condvar park.
    assert!(m.parks >= 1, "idle worker never parked: {m:?}");
    assert!(m.idle_seconds > 0.0, "parks recorded no idle time: {m:?}");
    // Every park is histogrammed; idle time is accounted, not spun away.
    assert_eq!(m.idle_hist.total(), m.parks, "park accounting leak: {m:?}");

    // Zero work: resuming an already-drained checkpoint must observe the
    // drained worklist on the first pop and exit — no parks at all.
    let ckpt = charon::Checkpoint {
        target: 1,
        pending: vec![],
        regions_done: 3,
    };
    let run = ParallelVerifier::new(
        Arc::new(LinearPolicy::default()),
        VerifierConfig::default(),
        4,
    )
    .resume(&net, &ckpt)
    .unwrap();
    assert_eq!(run.verdict, Verdict::Verified);
    assert_eq!(run.stats.regions, 0);
    assert_eq!(
        run.stats.metrics.parks, 0,
        "zero-work run parked instead of exiting: {:?}",
        run.stats.metrics
    );
}

/// Regression test for the stale-counter bug: the checkpoint written by
/// an interrupted parallel run must count regions from the *merged*
/// worker stats, including workers that panicked and degraded, not from
/// a driver-side counter that can lag behind worker exits.
#[test]
fn parallel_checkpoint_counts_match_merged_worker_stats() {
    quiet_injected_panics();
    let net = samples::xor_network();
    let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    let policy: Arc<dyn Policy> = Arc::new(FixedPolicy::new(DomainChoice::interval()));
    let config = VerifierConfig {
        cancel: Some(Arc::new(AtomicBool::new(false))),
        faults: Some(Arc::new(
            FaultPlan::new()
                .inject(FaultSite::WorkerPanic, 0)
                .inject(FaultSite::Cancel, 2),
        )),
        ..VerifierConfig::default()
    };
    let run = ParallelVerifier::new(policy, config, 2)
        .try_verify_run(&net, &prop)
        .unwrap();
    assert_eq!(run.verdict, Verdict::ResourceLimit);
    let ckpt = run.checkpoint.expect("cancelled run checkpoints");
    assert_eq!(
        ckpt.regions_done, run.stats.regions,
        "checkpoint progress disagrees with merged worker stats"
    );
}
