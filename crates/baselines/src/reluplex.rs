//! The Reluplex baseline: a thin wrapper over the [`complete`] solver.
//!
//! Reluplex (Katz et al., CAV 2017) extends the simplex algorithm with
//! native ReLU handling. The decision core — LP relaxation plus ReLU case
//! splitting over our own simplex — lives in the [`complete`] crate (it
//! doubles as Charon's policy-selectable "perfectly precise domain", per
//! the paper's §9). This module adapts it to the uniform baseline-tool
//! interface: timeout handling, `ToolVerdict` mapping, and rejection of
//! max-pooling architectures (which the original tool does not support).

use std::time::{Duration, Instant};

use charon::RobustnessProperty;
use complete::{CompleteSolver, Decision};
use nn::Network;

use crate::ToolVerdict;

/// Configuration of the Reluplex-style solver.
#[derive(Debug, Clone)]
pub struct ReluplexConfig {
    /// Maximum number of search nodes (LP solves) per rival class.
    pub max_nodes: usize,
    /// Numerical tolerance for pruning (`min(y_K - y_j) > tol` prunes).
    pub tolerance: f64,
}

impl Default for ReluplexConfig {
    fn default() -> Self {
        ReluplexConfig {
            max_nodes: 100_000,
            tolerance: 1e-9,
        }
    }
}

/// The Reluplex-style complete verifier.
#[derive(Debug, Clone, Default)]
pub struct Reluplex {
    config: ReluplexConfig,
}

impl Reluplex {
    /// Creates a solver with an explicit configuration.
    pub fn new(config: ReluplexConfig) -> Self {
        Reluplex { config }
    }

    /// Decides a property with a wall-clock budget.
    ///
    /// Returns [`ToolVerdict::Unsupported`] for networks with max-pooling
    /// layers.
    pub fn analyze(
        &self,
        net: &Network,
        property: &RobustnessProperty,
        timeout: Duration,
    ) -> ToolVerdict {
        if !complete::supports(net) {
            return ToolVerdict::Unsupported;
        }
        let deadline = Instant::now() + timeout;
        let solver = CompleteSolver {
            max_nodes: self.config.max_nodes,
            tolerance: self.config.tolerance,
        };
        match solver.decide(net, property.region(), property.target(), deadline) {
            Decision::Proved => ToolVerdict::Verified,
            Decision::Violated(x) => ToolVerdict::Falsified(x),
            Decision::Budget => ToolVerdict::Timeout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domains::Bounds;
    use nn::{samples, Layer};

    const BUDGET: Duration = Duration::from_secs(30);

    #[test]
    fn verifies_example_2_2() {
        let net = samples::example_2_2_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![-1.0], vec![1.0]), 1);
        assert_eq!(
            Reluplex::default().analyze(&net, &prop, BUDGET),
            ToolVerdict::Verified
        );
    }

    #[test]
    fn falsifies_example_2_2_extended() {
        let net = samples::example_2_2_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![-1.0], vec![2.0]), 1);
        match Reluplex::default().analyze(&net, &prop, BUDGET) {
            ToolVerdict::Falsified(x) => {
                assert!(prop.region().contains(&x));
                assert!(net.objective(&x, 1) <= 0.0, "returned point must violate");
            }
            other => panic!("expected falsification, got {other:?}"),
        }
    }

    #[test]
    fn verifies_xor_example_3_1() {
        let net = samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
        assert_eq!(
            Reluplex::default().analyze(&net, &prop, BUDGET),
            ToolVerdict::Verified
        );
    }

    #[test]
    fn falsifies_xor_unit_square() {
        let net = samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        match Reluplex::default().analyze(&net, &prop, BUDGET) {
            ToolVerdict::Falsified(x) => {
                assert_ne!(net.classify(&x), 1);
            }
            other => panic!("expected falsification, got {other:?}"),
        }
    }

    #[test]
    fn verifies_example_2_3() {
        let net = samples::example_2_3_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        assert_eq!(
            Reluplex::default().analyze(&net, &prop, BUDGET),
            ToolVerdict::Verified
        );
    }

    #[test]
    fn agrees_with_charon_on_random_networks() {
        // Completeness cross-check: on small random networks the complete
        // solver and Charon must agree whenever both decide.
        for seed in 0..6 {
            let net = nn::train::random_mlp(2, &[4], 2, seed);
            let prop = RobustnessProperty::new(
                Bounds::linf_ball(&[0.1, -0.2], 0.4, None),
                net.classify(&[0.1, -0.2]),
            );
            let rp = Reluplex::default().analyze(&net, &prop, BUDGET);
            let ch = charon::Verifier::default().verify(&net, &prop);
            match (rp, ch) {
                (ToolVerdict::Verified, v) => {
                    assert!(
                        v.is_verified(),
                        "seed {seed}: reluplex verified, charon {v:?}"
                    )
                }
                (ToolVerdict::Falsified(_), v) => {
                    assert!(
                        v.is_refuted(),
                        "seed {seed}: reluplex falsified, charon {v:?}"
                    )
                }
                (other, _) => panic!("seed {seed}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn rejects_maxpool() {
        let pool = nn::conv::max_pool_groups(nn::conv::Shape3::new(1, 2, 2), 2);
        let net = Network::new(
            4,
            vec![
                Layer::MaxPool(pool),
                Layer::Affine(nn::AffineLayer::new(
                    tensor::Matrix::from_rows(&[&[1.0], &[-1.0]]),
                    vec![0.0, 0.0],
                )),
            ],
        )
        .unwrap();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0; 4], vec![1.0; 4]), 0);
        assert_eq!(
            Reluplex::default().analyze(&net, &prop, BUDGET),
            ToolVerdict::Unsupported
        );
    }
}
