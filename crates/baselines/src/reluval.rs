//! ReluVal: symbolic interval analysis with iterative bisection.
//!
//! ReluVal propagates symbolic intervals (see [`domains::symbolic`])
//! through the network; when the analysis is inconclusive it bisects the
//! input region along the dimension with the largest *smear* value (region
//! width times gradient-bound magnitude) and recurses. The strategy is
//! hand-crafted and static — this is exactly the "abstraction refinement
//! without learning or counterexample search" baseline of §7.2.
//!
//! ReluVal cannot produce counterexamples: on falsifiable properties it
//! keeps splitting until the timeout (matching §7.3, where it falsifies
//! zero benchmarks).

use std::time::{Duration, Instant};

use charon::RobustnessProperty;
use domains::symbolic::{propagate_symbolic, smear_values};
use domains::Bounds;
use nn::{Layer, Network};

use crate::ToolVerdict;

/// Configuration of the ReluVal baseline.
#[derive(Debug, Clone)]
pub struct ReluValConfig {
    /// Maximum bisection depth before giving up on a branch.
    pub max_depth: usize,
}

impl Default for ReluValConfig {
    fn default() -> Self {
        ReluValConfig { max_depth: 40 }
    }
}

/// The ReluVal analyzer.
#[derive(Debug, Clone, Default)]
pub struct ReluVal {
    config: ReluValConfig,
}

impl ReluVal {
    /// Creates a ReluVal instance with the given configuration.
    pub fn new(config: ReluValConfig) -> Self {
        ReluVal { config }
    }

    /// Analyzes a property with a wall-clock budget.
    ///
    /// Returns [`ToolVerdict::Unsupported`] for networks containing
    /// max-pooling layers (like the original tool, which handles only
    /// fully-connected ReLU networks).
    pub fn analyze(
        &self,
        net: &Network,
        property: &RobustnessProperty,
        timeout: Duration,
    ) -> ToolVerdict {
        if net.layers().iter().any(|l| matches!(l, Layer::MaxPool(_))) {
            return ToolVerdict::Unsupported;
        }
        let deadline = Instant::now() + timeout;
        let target = property.target();
        let mut stack: Vec<(Bounds, usize)> = vec![(property.region().clone(), 0)];
        let mut exhausted_depth = false;

        while let Some((region, depth)) = stack.pop() {
            if Instant::now() >= deadline {
                return ToolVerdict::Timeout;
            }
            let sym = propagate_symbolic(net, &region);
            if sym.margin_lower_bound(target) > 0.0 {
                continue;
            }
            if depth >= self.config.max_depth {
                exhausted_depth = true;
                continue;
            }
            // Split on the highest-smear dimension (ReluVal's heuristic);
            // fall back to the widest dimension when the smear signal is
            // degenerate.
            let smear = smear_values(net, &region);
            let widths = region.widths();
            let mut dim = tensor::ops::argmax(&smear);
            if widths[dim] <= 0.0 || smear[dim] <= 0.0 {
                dim = region.longest_dim();
            }
            if widths[dim] <= f64::EPSILON {
                // Cannot split further; treat as an undecidable leaf.
                exhausted_depth = true;
                continue;
            }
            let mid = 0.5 * (region.lower()[dim] + region.upper()[dim]);
            let (a, b) = region.split_at(dim, mid);
            stack.push((a, depth + 1));
            stack.push((b, depth + 1));
        }

        if exhausted_depth {
            ToolVerdict::Unknown
        } else {
            ToolVerdict::Verified
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::samples;

    const BUDGET: Duration = Duration::from_secs(10);

    #[test]
    fn verifies_xor_example_3_1() {
        let net = samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
        assert_eq!(
            ReluVal::default().analyze(&net, &prop, BUDGET),
            ToolVerdict::Verified
        );
    }

    #[test]
    fn verifies_example_2_2() {
        let net = samples::example_2_2_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![-1.0], vec![1.0]), 1);
        assert_eq!(
            ReluVal::default().analyze(&net, &prop, BUDGET),
            ToolVerdict::Verified
        );
    }

    #[test]
    fn cannot_falsify_only_times_out_or_exhausts() {
        let net = samples::example_2_2_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![-1.0], vec![2.0]), 1);
        let verdict = ReluVal::new(ReluValConfig { max_depth: 10 }).analyze(
            &net,
            &prop,
            Duration::from_millis(500),
        );
        assert!(
            matches!(verdict, ToolVerdict::Unknown | ToolVerdict::Timeout),
            "ReluVal must not decide a falsifiable property: {verdict:?}"
        );
    }

    #[test]
    fn rejects_maxpool_networks() {
        let pool = nn::conv::max_pool_groups(nn::conv::Shape3::new(1, 2, 2), 2);
        let net = Network::new(
            4,
            vec![
                Layer::MaxPool(pool),
                Layer::Affine(nn::AffineLayer::new(
                    tensor::Matrix::from_rows(&[&[1.0], &[-1.0]]),
                    vec![0.0, 0.0],
                )),
            ],
        )
        .unwrap();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0; 4], vec![1.0; 4]), 0);
        assert_eq!(
            ReluVal::default().analyze(&net, &prop, BUDGET),
            ToolVerdict::Unsupported
        );
    }

    #[test]
    fn verifies_example_2_3_via_splitting() {
        let net = samples::example_2_3_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        assert_eq!(
            ReluVal::default().analyze(&net, &prop, BUDGET),
            ToolVerdict::Verified
        );
    }
}
