//! AI2: abstract interpretation with a fixed, user-chosen domain.
//!
//! AI2 propagates a single abstract element through the network and checks
//! the output against the robustness specification. It performs no
//! refinement and no counterexample search, so its only possible verdicts
//! are `Verified`, `Unknown`, and `Timeout`. Following the paper's
//! evaluation (§7.1), the two standard configurations are
//! [`Ai2::zonotope`] and [`Ai2::bounded64`] (powerset of zonotopes with 64
//! disjuncts).

use std::time::{Duration, Instant};

use charon::RobustnessProperty;
use domains::{AbstractElement, BaseDomain, DomainChoice, Interval, Powerset, Zonotope};
use nn::{Layer, Network};

use crate::ToolVerdict;

/// The AI2 analyzer with a fixed abstract domain.
#[derive(Debug, Clone)]
pub struct Ai2 {
    choice: DomainChoice,
}

impl Ai2 {
    /// AI2 instantiated with an arbitrary domain choice.
    pub fn new(choice: DomainChoice) -> Self {
        Ai2 { choice }
    }

    /// The `AI2-Zonotope` configuration.
    pub fn zonotope() -> Self {
        Ai2::new(DomainChoice::zonotope())
    }

    /// The `AI2-Bounded64` configuration: powerset of zonotopes with at
    /// most 64 disjuncts.
    pub fn bounded64() -> Self {
        Ai2::new(DomainChoice::powerset(BaseDomain::Zonotope, 64))
    }

    /// The domain this instance analyzes with.
    pub fn domain(&self) -> DomainChoice {
        self.choice
    }

    /// Analyzes with the *original* AI2 zonotope ReLU transformer
    /// (split at `x_i = 0`, exact ReLU per half, join) instead of the
    /// λ-relaxation. Coarser but faithful to the paper's Figure 4; see
    /// `Zonotope::relu_split_join`.
    pub fn analyze_faithful_zonotope(
        &self,
        net: &Network,
        property: &RobustnessProperty,
        timeout: Duration,
    ) -> ToolVerdict {
        let deadline = Instant::now() + timeout;
        let mut element = Zonotope::from_bounds(property.region());
        for layer in net.layers() {
            if Instant::now() >= deadline {
                return ToolVerdict::Timeout;
            }
            element = match layer {
                Layer::Affine(a) => element.affine(a),
                Layer::Relu => element.relu_split_join(),
                Layer::MaxPool(p) => element.max_pool(p),
            };
        }
        // The join's residual arithmetic accumulates rounding at the ulp
        // level; require the margin to clear float noise before claiming
        // a proof (on Example 2.3 the joined margin is ~2e-16 — Figure
        // 4's zonotope touching the unsafe point).
        if element.margin_lower_bound(property.target()) > 1e-9 {
            ToolVerdict::Verified
        } else {
            ToolVerdict::Unknown
        }
    }

    /// Analyzes a property with a wall-clock budget.
    ///
    /// The deadline is checked between layers, so a pathological single
    /// layer can overshoot slightly, but multi-layer powerset blow-ups
    /// are caught.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn analyze(
        &self,
        net: &Network,
        property: &RobustnessProperty,
        timeout: Duration,
    ) -> ToolVerdict {
        let deadline = Instant::now() + timeout;
        match (self.choice.base, self.choice.disjuncts) {
            (BaseDomain::Interval, 1) => self.run::<Interval>(
                net,
                property,
                Interval::from_bounds(property.region()),
                deadline,
            ),
            (BaseDomain::Zonotope, 1) => self.run::<Zonotope>(
                net,
                property,
                Zonotope::from_bounds(property.region()),
                deadline,
            ),
            (BaseDomain::Interval, k) => self.run::<Powerset<Interval>>(
                net,
                property,
                Powerset::with_budget(property.region(), k),
                deadline,
            ),
            (BaseDomain::Zonotope, k) => self.run::<Powerset<Zonotope>>(
                net,
                property,
                Powerset::with_budget(property.region(), k),
                deadline,
            ),
        }
    }

    fn run<E: AbstractElement>(
        &self,
        net: &Network,
        property: &RobustnessProperty,
        input: E,
        deadline: Instant,
    ) -> ToolVerdict {
        let mut element = input;
        for layer in net.layers() {
            if Instant::now() >= deadline {
                return ToolVerdict::Timeout;
            }
            element = match layer {
                Layer::Affine(a) => element.affine(a),
                Layer::Relu => element.relu(),
                Layer::MaxPool(p) => element.max_pool(p),
            };
        }
        if element.margin_lower_bound(property.target()) > 0.0 {
            ToolVerdict::Verified
        } else {
            ToolVerdict::Unknown
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domains::Bounds;
    use nn::samples;

    const BUDGET: Duration = Duration::from_secs(10);

    #[test]
    fn zonotope_verifies_example_2_2() {
        let net = samples::example_2_2_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![-1.0], vec![1.0]), 1);
        assert_eq!(
            Ai2::zonotope().analyze(&net, &prop, BUDGET),
            ToolVerdict::Verified
        );
    }

    #[test]
    fn ai2_cannot_falsify() {
        // On a falsifiable property AI2 reports Unknown, never Falsified.
        let net = samples::example_2_2_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![-1.0], vec![2.0]), 1);
        assert_eq!(
            Ai2::zonotope().analyze(&net, &prop, BUDGET),
            ToolVerdict::Unknown
        );
        assert_eq!(
            Ai2::bounded64().analyze(&net, &prop, BUDGET),
            ToolVerdict::Unknown
        );
    }

    #[test]
    fn bounded64_more_precise_than_interval_ai2() {
        let net = samples::example_2_3_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        let interval = Ai2::new(DomainChoice::interval());
        assert_eq!(interval.analyze(&net, &prop, BUDGET), ToolVerdict::Unknown);
        assert_eq!(
            Ai2::bounded64().analyze(&net, &prop, BUDGET),
            ToolVerdict::Verified
        );
    }

    #[test]
    fn xor_example_needs_refinement_ai2_lacks() {
        // Example 3.1 requires splitting the input region; plain-zonotope
        // AI2 cannot verify it.
        let net = samples::xor_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
        let direct = Ai2::zonotope().analyze(&net, &prop, BUDGET);
        // Either verdict must at least be sound; Unknown is expected.
        assert_ne!(direct, ToolVerdict::Timeout);
        // Charon verifies the same property (demonstrating the gap).
        assert!(charon::Verifier::default()
            .verify(&net, &prop)
            .is_verified());
    }

    #[test]
    fn faithful_zonotope_is_coarser_on_example_2_3() {
        // The λ-relaxation zonotope verifies Example 2.3; the paper's
        // split-then-join transformer cannot (Figure 4) — and neither
        // could the original AI2-Zonotope, which is why the paper reaches
        // for the powerset there.
        let net = samples::example_2_3_network();
        let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        let ai2 = Ai2::zonotope();
        assert_eq!(ai2.analyze(&net, &prop, BUDGET), ToolVerdict::Verified);
        assert_eq!(
            ai2.analyze_faithful_zonotope(&net, &prop, BUDGET),
            ToolVerdict::Unknown
        );
        // On a comfortably robust property both agree.
        let easy = RobustnessProperty::new(Bounds::new(vec![0.4, 0.4], vec![0.6, 0.6]), 1);
        assert_eq!(
            ai2.analyze_faithful_zonotope(&net, &easy, BUDGET),
            ToolVerdict::Verified
        );
    }

    #[test]
    fn instant_deadline_times_out() {
        let net = nn::train::random_mlp(6, &[32, 32], 3, 1);
        let prop = RobustnessProperty::new(Bounds::linf_ball(&[0.0; 6], 0.5, None), 0);
        let verdict = Ai2::bounded64().analyze(&net, &prop, Duration::from_nanos(1));
        assert_eq!(verdict, ToolVerdict::Timeout);
    }
}
