//! Reimplementations of the verification tools Charon is evaluated
//! against (§7):
//!
//! * [`ai2`] — AI2 (Gehr et al., S&P 2018): pure abstract interpretation
//!   with a user-chosen domain; incomplete, cannot produce
//!   counterexamples.
//! * [`reluval`] — ReluVal (Wang et al., USENIX Security 2018): symbolic
//!   interval analysis with a hand-crafted iterative bisection strategy.
//! * [`reluplex`] — a Reluplex-style complete decision procedure (Katz et
//!   al., CAV 2017): LP relaxation plus ReLU case splitting over our own
//!   simplex ([`lp`]).
//!
//! All tools share the [`ToolVerdict`] result type and honor a wall-clock
//! deadline so the benchmark harness can drive them uniformly.

pub mod ai2;
pub mod reluplex;
pub mod reluval;

/// Uniform verdict across baseline tools.
#[derive(Debug, Clone, PartialEq)]
pub enum ToolVerdict {
    /// The property was proved.
    Verified,
    /// A concrete counterexample was found.
    Falsified(Vec<f64>),
    /// The tool finished but could not decide (incomplete analysis).
    Unknown,
    /// The time budget was exhausted.
    Timeout,
    /// The tool does not support this network architecture (e.g. max
    /// pooling for ReluVal/Reluplex).
    Unsupported,
}

impl ToolVerdict {
    /// Whether the verdict decides the property (verified or falsified).
    pub fn is_decided(&self) -> bool {
        matches!(self, ToolVerdict::Verified | ToolVerdict::Falsified(_))
    }
}

impl std::fmt::Display for ToolVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ToolVerdict::Verified => write!(f, "verified"),
            ToolVerdict::Falsified(_) => write!(f, "falsified"),
            ToolVerdict::Unknown => write!(f, "unknown"),
            ToolVerdict::Timeout => write!(f, "timeout"),
            ToolVerdict::Unsupported => write!(f, "unsupported"),
        }
    }
}
