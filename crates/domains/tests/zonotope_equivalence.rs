//! Equivalence suite for the flat-generator zonotope: the blocked
//! matrix-kernel transformers must agree with a naive per-generator
//! `Vec<Vec<f64>>` reference (the pre-flat representation) within 1e-12,
//! including the empty-generator and single-generator edge cases.

use domains::{AbstractElement, Bounds, Zonotope};
use nn::AffineLayer;
use proptest::prelude::*;
use tensor::Matrix;

/// Reference zonotope with one `Vec<f64>` per generator, mirroring the
/// semantics of the flat implementation transformer by transformer.
#[derive(Debug, Clone)]
struct NaiveZonotope {
    center: Vec<f64>,
    gens: Vec<Vec<f64>>,
}

impl NaiveZonotope {
    fn from_bounds(bounds: &Bounds) -> Self {
        let dim = bounds.dim();
        let center = bounds.center();
        let widths = bounds.widths();
        let mut gens = Vec::new();
        for (i, w) in widths.iter().enumerate() {
            if *w > 0.0 {
                let mut g = vec![0.0; dim];
                g[i] = 0.5 * w;
                gens.push(g);
            }
        }
        NaiveZonotope { center, gens }
    }

    fn dim(&self) -> usize {
        self.center.len()
    }

    /// Per-generator matvec affine map (the pre-flat implementation).
    fn affine(&self, layer: &AffineLayer) -> Self {
        let out = layer.output_dim();
        let mut center = vec![0.0; out];
        for (r, c) in center.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (w, x) in layer.weights.row(r).iter().zip(self.center.iter()) {
                acc += w * x;
            }
            *c = acc + layer.bias[r];
        }
        let gens = self
            .gens
            .iter()
            .map(|g| {
                (0..out)
                    .map(|r| {
                        layer
                            .weights
                            .row(r)
                            .iter()
                            .zip(g.iter())
                            .map(|(w, v)| w * v)
                            .sum()
                    })
                    .collect()
            })
            .collect();
        NaiveZonotope { center, gens }
    }

    fn radii(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        for g in &self.gens {
            for (acc, v) in out.iter_mut().zip(g.iter()) {
                *acc += v.abs();
            }
        }
        out
    }

    /// λ-relaxation ReLU mirroring the flat transformer: radii cached up
    /// front, stable-negative coordinates projected, unstable coordinates
    /// relaxed with a fresh box generator, zero rows pruned at the end.
    fn relu(&self) -> Self {
        let mut out = self.clone();
        let radii = out.radii();
        for (i, r) in radii.into_iter().enumerate() {
            let (lo, hi) = (out.center[i] - r, out.center[i] + r);
            if hi <= 0.0 {
                out.center[i] = 0.0;
                for g in &mut out.gens {
                    g[i] = 0.0;
                }
            } else if lo < 0.0 {
                let lambda = hi / (hi - lo);
                let mu = -0.5 * lambda * lo;
                out.center[i] = lambda * out.center[i] + mu;
                for g in &mut out.gens {
                    g[i] *= lambda;
                }
                let mut fresh = vec![0.0; out.dim()];
                fresh[i] = mu;
                out.gens.push(fresh);
            }
        }
        out.gens.retain(|g| g.iter().any(|v| *v != 0.0));
        out
    }

    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        let radii = self.radii();
        let lower = self
            .center
            .iter()
            .zip(radii.iter())
            .map(|(c, r)| c - r)
            .collect();
        let upper = self
            .center
            .iter()
            .zip(radii.iter())
            .map(|(c, r)| c + r)
            .collect();
        (lower, upper)
    }

    fn margin_lower_bound(&self, target: usize) -> f64 {
        let mut worst = f64::INFINITY;
        for j in 0..self.dim() {
            if j == target {
                continue;
            }
            let dev: f64 = self.gens.iter().map(|g| (g[target] - g[j]).abs()).sum();
            worst = worst.min(self.center[target] - self.center[j] - dev);
        }
        worst
    }
}

fn assert_zonotopes_match(flat: &Zonotope, naive: &NaiveZonotope) {
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * b.abs().max(1.0);
    assert_eq!(flat.center().len(), naive.center.len());
    for (a, b) in flat.center().iter().zip(naive.center.iter()) {
        assert!(close(*a, *b), "center {a} vs naive {b}");
    }
    assert_eq!(
        flat.num_generators(),
        naive.gens.len(),
        "generator counts diverged"
    );
    for (fg, ng) in flat.generator_rows().zip(naive.gens.iter()) {
        for (a, b) in fg.iter().zip(ng.iter()) {
            assert!(close(*a, *b), "generator entry {a} vs naive {b}");
        }
    }
}

fn deterministic_layer(out_dim: usize, in_dim: usize, seed: u64) -> AffineLayer {
    let weights = Matrix::from_fn(out_dim, in_dim, |r, c| {
        (((r * 13 + c * 7) as f64 + seed as f64) * 0.271).sin() * 2.0
    });
    let bias = (0..out_dim)
        .map(|r| ((r as f64 + seed as f64) * 0.53).cos())
        .collect();
    AffineLayer::new(weights, bias)
}

fn deterministic_region(dim: usize, seed: u64) -> Bounds {
    let lower: Vec<f64> = (0..dim)
        .map(|i| ((i as f64 + seed as f64) * 0.37).sin() - 0.8)
        .collect();
    let upper: Vec<f64> = lower
        .iter()
        .enumerate()
        .map(|(i, l)| l + ((i as f64 + seed as f64) * 0.19).cos().abs() + 0.1)
        .collect();
    Bounds::new(lower, upper)
}

proptest! {
    /// One affine layer: flat blocked path equals per-generator matvecs.
    #[test]
    fn affine_matches_naive(dim in 1usize..7, out in 1usize..7, seed in 0u64..500) {
        let region = deterministic_region(dim, seed);
        let layer = deterministic_layer(out, dim, seed);
        let flat = Zonotope::from_bounds(&region).affine(&layer);
        let naive = NaiveZonotope::from_bounds(&region).affine(&layer);
        assert_zonotopes_match(&flat, &naive);
    }

    /// Affine → ReLU → affine: the full hot path including pruning and
    /// fresh noise symbols agrees exactly.
    #[test]
    fn affine_relu_chain_matches_naive(dim in 1usize..6, hidden in 1usize..8, seed in 0u64..500) {
        let region = deterministic_region(dim, seed);
        let l1 = deterministic_layer(hidden, dim, seed);
        let l2 = deterministic_layer(3, hidden, seed ^ 0x99);

        let flat = Zonotope::from_bounds(&region).affine(&l1).relu().affine(&l2);
        let naive = NaiveZonotope::from_bounds(&region).affine(&l1).relu().affine(&l2);
        assert_zonotopes_match(&flat, &naive);

        let (nlo, nhi) = naive.bounds();
        let fb = flat.bounds();
        for i in 0..3 {
            prop_assert!((fb.lower()[i] - nlo[i]).abs() <= 1e-12 * nlo[i].abs().max(1.0));
            prop_assert!((fb.upper()[i] - nhi[i]).abs() <= 1e-12 * nhi[i].abs().max(1.0));
        }
        for t in 0..3 {
            let fm = flat.margin_lower_bound(t);
            let nm = naive.margin_lower_bound(t);
            prop_assert!((fm - nm).abs() <= 1e-12 * nm.abs().max(1.0),
                "margin {fm} vs naive {nm}");
        }
    }
}

#[test]
fn empty_generator_zonotope_propagates() {
    // A degenerate point region has zero generators; the flat kernels
    // must handle the 0×n generator matrix.
    let region = Bounds::new(vec![0.25, -0.5], vec![0.25, -0.5]);
    let layer = deterministic_layer(3, 2, 11);
    let flat = Zonotope::from_bounds(&region).affine(&layer).relu();
    let naive = NaiveZonotope::from_bounds(&region).affine(&layer).relu();
    assert_eq!(flat.num_generators(), naive.gens.len());
    assert_zonotopes_match(&flat, &naive);
    let b = flat.bounds();
    // Point in, point out: lower == upper everywhere.
    for i in 0..3 {
        assert!((b.upper()[i] - b.lower()[i]).abs() <= 1e-12);
    }
}

#[test]
fn single_generator_zonotope_matches() {
    // Exactly one coordinate has width, so the generator matrix has one
    // row — the smallest non-empty blocked matmul.
    let region = Bounds::new(vec![-1.0, 0.5], vec![1.0, 0.5]);
    let layer = deterministic_layer(4, 2, 23);
    let flat = Zonotope::from_bounds(&region).affine(&layer).relu();
    let naive = NaiveZonotope::from_bounds(&region).affine(&layer).relu();
    assert_zonotopes_match(&flat, &naive);
}

#[test]
fn affine_no_longer_prunes_zero_rows() {
    // A weight matrix with a zero column maps one generator to a zero
    // row. The affine transformer must keep it (pruning now happens only
    // after ReLU / order reduction), matching the naive reference which
    // never pruned inside affine.
    let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
    let layer = AffineLayer::new(
        Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 2.0]]),
        vec![0.0, 0.0],
    );
    let flat = Zonotope::from_bounds(&region).affine(&layer);
    // Generator for x0 maps to the zero row; both rows survive.
    assert_eq!(flat.num_generators(), 2);
    assert!(flat.generator_rows().next().unwrap().iter().all(|v| *v == 0.0));
    // ReLU prunes it: outputs are stable-positive halves of [0, 1]/[0, 2].
    let after = flat.relu();
    assert_eq!(after.num_generators(), 1);
}
