use nn::{AffineLayer, MaxPoolLayer};

use crate::{AbstractElement, Bounds, ReluCoordOps, Workspace};

/// The interval (box) abstract domain.
///
/// Each coordinate is tracked independently as a `[lo, hi]` range. All
/// transformers are the standard interval-arithmetic ones; they are cheap
/// but non-relational.
///
/// # Examples
///
/// ```
/// use domains::{AbstractElement, Bounds, Interval};
///
/// let e = Interval::from_bounds(&Bounds::new(vec![-1.0], vec![1.0]));
/// let r = e.relu();
/// assert_eq!(r.bounds().lower(), &[0.0]);
/// assert_eq!(r.bounds().upper(), &[1.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Interval {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Interval {
    /// Per-coordinate lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Per-coordinate upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Shared kernel for [`AbstractElement::affine`] /
    /// [`AbstractElement::affine_ws`]: writes the output bounds of
    /// `W x + b` into caller-provided buffers, one row-slice pass per
    /// output neuron (no per-element index bounds checks).
    fn affine_into(&self, layer: &AffineLayer, lower: &mut [f64], upper: &mut [f64]) {
        for (r, (lo_out, hi_out)) in lower.iter_mut().zip(upper.iter_mut()).enumerate() {
            let mut lo = layer.bias[r];
            let mut hi = layer.bias[r];
            for ((w, l), u) in layer
                .weights
                .row(r)
                .iter()
                .zip(self.lower.iter())
                .zip(self.upper.iter())
            {
                if *w >= 0.0 {
                    lo += w * l;
                    hi += w * u;
                } else {
                    lo += w * u;
                    hi += w * l;
                }
            }
            *lo_out = lo;
            *hi_out = hi;
        }
    }
}

impl AbstractElement for Interval {
    fn from_bounds(bounds: &Bounds) -> Self {
        Interval {
            lower: bounds.lower().to_vec(),
            upper: bounds.upper().to_vec(),
        }
    }

    fn dim(&self) -> usize {
        self.lower.len()
    }

    fn bounds(&self) -> Bounds {
        Bounds::new(self.lower.clone(), self.upper.clone())
    }

    fn affine(&self, layer: &AffineLayer) -> Self {
        assert_eq!(self.dim(), layer.input_dim(), "affine dimension mismatch");
        let out = layer.output_dim();
        let mut lower = vec![0.0; out];
        let mut upper = vec![0.0; out];
        self.affine_into(layer, &mut lower, &mut upper);
        Interval { lower, upper }
    }

    fn affine_ws(&self, layer: &AffineLayer, ws: &mut Workspace) -> Self {
        assert_eq!(self.dim(), layer.input_dim(), "affine dimension mismatch");
        let out = layer.output_dim();
        let mut lower = ws.take(out);
        let mut upper = ws.take(out);
        self.affine_into(layer, &mut lower, &mut upper);
        Interval { lower, upper }
    }

    fn recycle(self, ws: &mut Workspace) {
        ws.give(self.lower);
        ws.give(self.upper);
    }

    fn relu(&self) -> Self {
        Interval {
            lower: self.lower.iter().map(|l| l.max(0.0)).collect(),
            upper: self.upper.iter().map(|u| u.max(0.0)).collect(),
        }
    }

    fn max_pool(&self, layer: &MaxPoolLayer) -> Self {
        assert_eq!(self.dim(), layer.input_dim, "max-pool dimension mismatch");
        let lower = layer
            .groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|&i| self.lower[i])
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        let upper = layer
            .groups
            .iter()
            .map(|g| {
                g.iter()
                    .map(|&i| self.upper[i])
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        Interval { lower, upper }
    }

    fn margin_lower_bound(&self, target: usize) -> f64 {
        assert!(target < self.dim(), "target class out of range");
        let mut worst = f64::INFINITY;
        for j in 0..self.dim() {
            if j != target {
                worst = worst.min(self.lower[target] - self.upper[j]);
            }
        }
        worst
    }

    fn is_poisoned(&self) -> bool {
        self.lower.iter().chain(self.upper.iter()).any(|v| v.is_nan())
    }
}

impl ReluCoordOps for Interval {
    fn coord_bounds(&self, i: usize) -> (f64, f64) {
        (self.lower[i], self.upper[i])
    }

    fn project_zero(&mut self, i: usize) {
        self.lower[i] = 0.0;
        self.upper[i] = 0.0;
    }

    fn relax_relu_coord(&mut self, i: usize, lo: f64, _hi: f64) {
        debug_assert!(lo < 0.0, "relaxation is only for unstable coordinates");
        self.lower[i] = 0.0;
        // Upper bound is unchanged: relu(x) <= max(x, 0) = upper.
        self.upper[i] = self.upper[i].max(0.0);
    }

    fn meet_coord_nonneg(&self, i: usize) -> Option<Self> {
        if self.upper[i] < 0.0 {
            return None;
        }
        let mut out = self.clone();
        out.lower[i] = out.lower[i].max(0.0);
        Some(out)
    }

    fn meet_coord_nonpos(&self, i: usize) -> Option<Self> {
        if self.lower[i] > 0.0 {
            return None;
        }
        let mut out = self.clone();
        out.upper[i] = out.upper[i].min(0.0);
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::samples;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Matrix;

    #[test]
    fn affine_interval_bounds() {
        let layer = AffineLayer::new(Matrix::from_rows(&[&[1.0, -1.0]]), vec![0.5]);
        let e = Interval::from_bounds(&Bounds::new(vec![0.0, 0.0], vec![1.0, 2.0]));
        let out = e.affine(&layer);
        assert_eq!(out.lower(), &[-1.5]);
        assert_eq!(out.upper(), &[1.5]);
    }

    #[test]
    fn relu_clamps_lower() {
        let e = Interval::from_bounds(&Bounds::new(vec![-3.0, 1.0], vec![-1.0, 2.0]));
        let r = e.relu();
        assert_eq!(r.lower(), &[0.0, 1.0]);
        assert_eq!(r.upper(), &[0.0, 2.0]);
    }

    #[test]
    fn maxpool_interval() {
        let layer = MaxPoolLayer::new(4, vec![vec![0, 1], vec![2, 3]]);
        let e = Interval::from_bounds(&Bounds::new(
            vec![0.0, -1.0, 2.0, 3.0],
            vec![1.0, 5.0, 4.0, 3.5],
        ));
        let out = e.max_pool(&layer);
        assert_eq!(out.lower(), &[0.0, 3.0]);
        assert_eq!(out.upper(), &[5.0, 4.0]);
    }

    #[test]
    fn margin_lower_bound_boxes() {
        let e = Interval::from_bounds(&Bounds::new(vec![2.0, 0.0, -1.0], vec![3.0, 1.0, 0.5]));
        // target 0: min(2 - 1, 2 - 0.5) = 1.0
        assert_eq!(e.margin_lower_bound(0), 1.0);
        // target 1: 0 - 3 = -3
        assert_eq!(e.margin_lower_bound(1), -3.0);
    }

    #[test]
    fn meet_nonneg_empty_when_fully_negative() {
        let e = Interval::from_bounds(&Bounds::new(vec![-2.0], vec![-1.0]));
        assert!(e.meet_coord_nonneg(0).is_none());
        assert!(e.meet_coord_nonpos(0).is_some());
    }

    proptest! {
        /// Soundness: propagating the XOR network's input box through the
        /// interval transformers over-approximates concrete execution.
        #[test]
        fn interval_propagation_is_sound(seed in 0u64..200) {
            let net = samples::xor_network();
            let region = Bounds::new(vec![0.2, 0.1], vec![0.9, 0.8]);
            let out = crate::propagate(&net, Interval::from_bounds(&region));
            let mut rng = StdRng::seed_from_u64(seed);
            let x = region.sample(&mut rng);
            let y = net.eval(&x);
            let b = out.bounds();
            for i in 0..y.len() {
                prop_assert!(y[i] >= b.lower()[i] - 1e-9);
                prop_assert!(y[i] <= b.upper()[i] + 1e-9);
            }
        }
    }
}
