use rand::Rng;
use serde::{Deserialize, Serialize};

/// An axis-aligned box `[lower_1, upper_1] x ... x [lower_n, upper_n]`.
///
/// Boxes describe the input regions of robustness properties and the
/// concretization bounds of abstract elements.
///
/// # Examples
///
/// ```
/// use domains::Bounds;
///
/// let b = Bounds::new(vec![0.0, 0.0], vec![1.0, 2.0]);
/// assert_eq!(b.dim(), 2);
/// assert_eq!(b.center(), vec![0.5, 1.0]);
/// assert_eq!(b.widths(), vec![1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bounds {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Bounds {
    /// Creates a box from per-dimension lower and upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths or if some
    /// `lower[i] > upper[i]`.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Self {
        assert_eq!(lower.len(), upper.len(), "bounds length mismatch");
        for (l, u) in lower.iter().zip(upper.iter()) {
            assert!(l <= u, "lower bound {l} exceeds upper bound {u}");
        }
        Bounds { lower, upper }
    }

    /// Creates the degenerate box containing exactly `point`.
    pub fn point(point: &[f64]) -> Self {
        Bounds {
            lower: point.to_vec(),
            upper: point.to_vec(),
        }
    }

    /// Creates the L∞ ball of radius `eps` around `center`, optionally
    /// clipped to `[clip_lo, clip_hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `eps < 0`.
    pub fn linf_ball(center: &[f64], eps: f64, clip: Option<(f64, f64)>) -> Self {
        assert!(eps >= 0.0, "radius must be non-negative");
        let (lo, hi) = clip.unwrap_or((f64::NEG_INFINITY, f64::INFINITY));
        let lower = center.iter().map(|c| (c - eps).max(lo)).collect();
        let upper = center.iter().map(|c| (c + eps).min(hi)).collect();
        Bounds::new(lower, upper)
    }

    /// Number of dimensions.
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Per-dimension lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Per-dimension upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// The center point of the box.
    pub fn center(&self) -> Vec<f64> {
        self.lower
            .iter()
            .zip(self.upper.iter())
            .map(|(l, u)| 0.5 * (l + u))
            .collect()
    }

    /// Per-dimension widths `upper - lower`.
    pub fn widths(&self) -> Vec<f64> {
        self.lower
            .iter()
            .zip(self.upper.iter())
            .map(|(l, u)| u - l)
            .collect()
    }

    /// The L2 diameter of the box (Definition 5.1): the distance between
    /// opposite corners.
    pub fn diameter(&self) -> f64 {
        self.widths().iter().map(|w| w * w).sum::<f64>().sqrt()
    }

    /// Mean width across dimensions (a featurization input in §6).
    pub fn mean_width(&self) -> f64 {
        if self.dim() == 0 {
            return 0.0;
        }
        self.widths().iter().sum::<f64>() / self.dim() as f64
    }

    /// Index of the widest dimension. Ties resolve to the lowest index.
    ///
    /// # Panics
    ///
    /// Panics if the box is zero-dimensional.
    pub fn longest_dim(&self) -> usize {
        tensor::ops::argmax(&self.widths())
    }

    /// Whether any bound is NaN.
    ///
    /// NaN bounds cannot arise through [`Bounds::new`] (the order check
    /// rejects them), but they can slip in through [`Bounds::point`] or
    /// arithmetic on already-poisoned data; such a box poisons every
    /// comparison made against it.
    pub fn has_nan(&self) -> bool {
        self.lower.iter().chain(self.upper.iter()).any(|v| v.is_nan())
    }

    /// Whether every bound is finite (no NaN, no ±∞).
    pub fn is_finite(&self) -> bool {
        self.lower
            .iter()
            .chain(self.upper.iter())
            .all(|v| v.is_finite())
    }

    /// Whether `x` lies inside the box (inclusive).
    pub fn contains(&self, x: &[f64]) -> bool {
        x.len() == self.dim()
            && x.iter()
                .zip(self.lower.iter().zip(self.upper.iter()))
                .all(|(v, (l, u))| *v >= *l && *v <= *u)
    }

    /// Splits the box into two along dimension `dim` at position `at`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is out of range or `at` is outside the open
    /// interval `(lower[dim], upper[dim])`.
    pub fn split_at(&self, dim: usize, at: f64) -> (Bounds, Bounds) {
        assert!(dim < self.dim(), "split dimension out of range");
        assert!(
            at > self.lower[dim] && at < self.upper[dim],
            "split point {at} not strictly inside [{}, {}]",
            self.lower[dim],
            self.upper[dim]
        );
        let mut left = self.clone();
        let mut right = self.clone();
        left.upper[dim] = at;
        right.lower[dim] = at;
        (left, right)
    }

    /// Splits the box in half along its widest dimension.
    ///
    /// # Panics
    ///
    /// Panics if every dimension has zero width.
    pub fn bisect(&self) -> (Bounds, Bounds) {
        let dim = self.longest_dim();
        let mid = 0.5 * (self.lower[dim] + self.upper[dim]);
        self.split_at(dim, mid)
    }

    /// Samples a uniform point inside the box.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        self.lower
            .iter()
            .zip(self.upper.iter())
            .map(|(l, u)| if l == u { *l } else { rng.gen_range(*l..=*u) })
            .collect()
    }

    /// Clamps `x` into the box in place.
    pub fn clamp(&self, x: &mut [f64]) {
        tensor::ops::clamp_box(x, &self.lower, &self.upper);
    }

    /// The smallest box containing both `self` and `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn join(&self, other: &Bounds) -> Bounds {
        assert_eq!(self.dim(), other.dim(), "join dimension mismatch");
        Bounds {
            lower: self
                .lower
                .iter()
                .zip(other.lower.iter())
                .map(|(a, b)| a.min(*b))
                .collect(),
            upper: self
                .upper
                .iter()
                .zip(other.upper.iter())
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diameter_is_corner_distance() {
        let b = Bounds::new(vec![0.0, 0.0], vec![3.0, 4.0]);
        assert_eq!(b.diameter(), 5.0);
    }

    #[test]
    fn linf_ball_with_clip() {
        let b = Bounds::linf_ball(&[0.9, 0.1], 0.2, Some((0.0, 1.0)));
        let expect_lo = [0.7, 0.0];
        let expect_hi = [1.0, 0.30000000000000004];
        for i in 0..2 {
            assert!((b.lower()[i] - expect_lo[i]).abs() < 1e-12);
            assert!((b.upper()[i] - expect_hi[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn split_partitions_box() {
        let b = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let (l, r) = b.split_at(0, 0.25);
        assert_eq!(l.upper()[0], 0.25);
        assert_eq!(r.lower()[0], 0.25);
        assert_eq!(l.lower()[1], 0.0);
        assert_eq!(r.upper()[1], 1.0);
    }

    #[test]
    #[should_panic(expected = "not strictly inside")]
    fn split_at_boundary_panics() {
        Bounds::new(vec![0.0], vec![1.0]).split_at(0, 1.0);
    }

    #[test]
    fn bisect_halves_widest() {
        let b = Bounds::new(vec![0.0, 0.0], vec![1.0, 4.0]);
        let (l, r) = b.bisect();
        assert_eq!(l.upper()[1], 2.0);
        assert_eq!(r.lower()[1], 2.0);
    }

    #[test]
    fn contains_boundary_points() {
        let b = Bounds::new(vec![0.0], vec![1.0]);
        assert!(b.contains(&[0.0]));
        assert!(b.contains(&[1.0]));
        assert!(!b.contains(&[1.0001]));
        assert!(!b.contains(&[0.5, 0.5]));
    }

    #[test]
    fn join_covers_both() {
        let a = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let b = Bounds::new(vec![-1.0, 0.5], vec![0.5, 2.0]);
        let j = a.join(&b);
        assert_eq!(j, Bounds::new(vec![-1.0, 0.0], vec![1.0, 2.0]));
    }

    proptest! {
        #[test]
        fn samples_lie_inside(seed in 0u64..100) {
            let b = Bounds::new(vec![-2.0, 1.0, 0.0], vec![-1.0, 4.0, 0.0]);
            let mut rng = StdRng::seed_from_u64(seed);
            let x = b.sample(&mut rng);
            prop_assert!(b.contains(&x));
        }

        #[test]
        fn bisect_shrinks_diameter(
            lo in proptest::collection::vec(-5.0f64..0.0, 3),
            w in proptest::collection::vec(0.1f64..5.0, 3),
        ) {
            let hi: Vec<f64> = lo.iter().zip(w.iter()).map(|(l, w)| l + w).collect();
            let b = Bounds::new(lo, hi);
            let (l, r) = b.bisect();
            // Assumption 1 of the paper: both halves strictly smaller.
            prop_assert!(l.diameter() < b.diameter());
            prop_assert!(r.diameter() < b.diameter());
        }
    }
}
