//! Symbolic interval propagation and interval gradient analysis.
//!
//! This module implements the analysis core of ReluVal (Wang et al.,
//! USENIX Security 2018), which the paper uses as a baseline:
//!
//! * [`SymbolicInterval`] tracks, for every neuron, *linear* lower and
//!   upper bounding functions of the network inputs, concretizing only at
//!   unstable ReLUs. This is substantially tighter than plain intervals
//!   because input dependencies cancel symbolically.
//! * [`gradient_bounds`] computes interval bounds on `∂ y_out / ∂ x_i`
//!   over an input region by interval backpropagation with `[0, 1]` masks
//!   at unstable ReLUs. It powers ReluVal's "smear" split heuristic and
//!   Charon's "influence" feature (§6).

use nn::{AffineLayer, Layer, MaxPoolLayer, Network};
use tensor::Matrix;

use crate::{AbstractElement, Bounds};

/// A linear function of the network inputs: `coeffs . x + constant`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearFn {
    /// Coefficients, one per input dimension.
    pub coeffs: Vec<f64>,
    /// Constant offset.
    pub constant: f64,
}

impl LinearFn {
    /// The zero function over `dim` inputs.
    pub fn zero(dim: usize) -> Self {
        LinearFn {
            coeffs: vec![0.0; dim],
            constant: 0.0,
        }
    }

    /// The constant function `c`.
    pub fn constant(dim: usize, c: f64) -> Self {
        LinearFn {
            coeffs: vec![0.0; dim],
            constant: c,
        }
    }

    /// The coordinate projection `x_i`.
    pub fn coordinate(dim: usize, i: usize) -> Self {
        let mut f = LinearFn::zero(dim);
        f.coeffs[i] = 1.0;
        f
    }

    /// Minimum of the function over a box.
    pub fn min_over(&self, region: &Bounds) -> f64 {
        let mut v = self.constant;
        for (i, c) in self.coeffs.iter().enumerate() {
            v += if *c >= 0.0 {
                c * region.lower()[i]
            } else {
                c * region.upper()[i]
            };
        }
        v
    }

    /// Maximum of the function over a box.
    pub fn max_over(&self, region: &Bounds) -> f64 {
        let mut v = self.constant;
        for (i, c) in self.coeffs.iter().enumerate() {
            v += if *c >= 0.0 {
                c * region.upper()[i]
            } else {
                c * region.lower()[i]
            };
        }
        v
    }

    /// Pointwise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if the functions have different input dimensions.
    pub fn sub(&self, other: &LinearFn) -> LinearFn {
        assert_eq!(self.coeffs.len(), other.coeffs.len(), "dimension mismatch");
        LinearFn {
            coeffs: tensor::ops::sub(&self.coeffs, &other.coeffs),
            constant: self.constant - other.constant,
        }
    }
}

/// A symbolic interval: per-neuron linear lower/upper bounding functions
/// of the inputs, valid over a fixed input region.
#[derive(Debug, Clone)]
pub struct SymbolicInterval {
    region: Bounds,
    lower: Vec<LinearFn>,
    upper: Vec<LinearFn>,
}

impl SymbolicInterval {
    /// The identity symbolic interval over an input region.
    pub fn from_region(region: &Bounds) -> Self {
        let dim = region.dim();
        let coords: Vec<LinearFn> = (0..dim).map(|i| LinearFn::coordinate(dim, i)).collect();
        SymbolicInterval {
            region: region.clone(),
            lower: coords.clone(),
            upper: coords,
        }
    }

    /// The input region the bounds are valid over.
    pub fn region(&self) -> &Bounds {
        &self.region
    }

    /// Number of neurons currently tracked.
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Concrete bounds of neuron `i`.
    pub fn concrete_bounds(&self, i: usize) -> (f64, f64) {
        (
            self.lower[i].min_over(&self.region),
            self.upper[i].max_over(&self.region),
        )
    }

    /// Concrete bounds of every neuron as a box.
    pub fn bounds(&self) -> Bounds {
        let mut lo = Vec::with_capacity(self.dim());
        let mut hi = Vec::with_capacity(self.dim());
        for i in 0..self.dim() {
            let (l, u) = self.concrete_bounds(i);
            lo.push(l);
            hi.push(u);
        }
        Bounds::new(lo, hi)
    }

    /// Symbolic affine transformer: exact on the linear bounding
    /// functions, choosing lower/upper rows by weight sign.
    pub fn affine(&self, layer: &AffineLayer) -> Self {
        assert_eq!(self.dim(), layer.input_dim(), "affine dimension mismatch");
        let in_dim = self.region.dim();
        let mut lower = Vec::with_capacity(layer.output_dim());
        let mut upper = Vec::with_capacity(layer.output_dim());
        for r in 0..layer.output_dim() {
            let mut lo = LinearFn::constant(in_dim, layer.bias[r]);
            let mut hi = LinearFn::constant(in_dim, layer.bias[r]);
            for (c, w) in layer.weights.row(r).iter().enumerate() {
                if *w == 0.0 {
                    continue;
                }
                let (src_lo, src_hi) = if *w > 0.0 {
                    (&self.lower[c], &self.upper[c])
                } else {
                    (&self.upper[c], &self.lower[c])
                };
                tensor::ops::axpy(*w, &src_lo.coeffs, &mut lo.coeffs);
                lo.constant += w * src_lo.constant;
                tensor::ops::axpy(*w, &src_hi.coeffs, &mut hi.coeffs);
                hi.constant += w * src_hi.constant;
            }
            lower.push(lo);
            upper.push(hi);
        }
        SymbolicInterval {
            region: self.region.clone(),
            lower,
            upper,
        }
    }

    /// Symbolic ReLU transformer with ReluVal's concretization rules.
    pub fn relu(&self) -> Self {
        let in_dim = self.region.dim();
        let mut out = self.clone();
        for i in 0..self.dim() {
            let lo_min = self.lower[i].min_over(&self.region);
            let up_max = self.upper[i].max_over(&self.region);
            if up_max <= 0.0 {
                out.lower[i] = LinearFn::zero(in_dim);
                out.upper[i] = LinearFn::zero(in_dim);
            } else if lo_min >= 0.0 {
                // Stable active: keep both equations.
            } else {
                // Unstable: the lower equation is replaced by zero. The
                // upper equation is kept if it is provably non-negative,
                // otherwise concretized to its maximum.
                out.lower[i] = LinearFn::zero(in_dim);
                if self.upper[i].min_over(&self.region) < 0.0 {
                    out.upper[i] = LinearFn::constant(in_dim, up_max);
                }
            }
        }
        out
    }

    /// Symbolic max-pool transformer: passes a dominant input through,
    /// otherwise concretizes to the interval hull of the group maxima.
    pub fn max_pool(&self, layer: &MaxPoolLayer) -> Self {
        assert_eq!(self.dim(), layer.input_dim, "max-pool dimension mismatch");
        let in_dim = self.region.dim();
        let concrete = self.bounds();
        let mut lower = Vec::with_capacity(layer.output_dim());
        let mut upper = Vec::with_capacity(layer.output_dim());
        for group in &layer.groups {
            let dominant = group.iter().copied().find(|&cand| {
                group
                    .iter()
                    .all(|&o| o == cand || concrete.lower()[cand] >= concrete.upper()[o])
            });
            match dominant {
                Some(idx) => {
                    lower.push(self.lower[idx].clone());
                    upper.push(self.upper[idx].clone());
                }
                None => {
                    let lo = group
                        .iter()
                        .map(|&i| concrete.lower()[i])
                        .fold(f64::NEG_INFINITY, f64::max);
                    let hi = group
                        .iter()
                        .map(|&i| concrete.upper()[i])
                        .fold(f64::NEG_INFINITY, f64::max);
                    lower.push(LinearFn::constant(in_dim, lo));
                    upper.push(LinearFn::constant(in_dim, hi));
                }
            }
        }
        SymbolicInterval {
            region: self.region.clone(),
            lower,
            upper,
        }
    }

    /// Sound lower bound on the margin `min_{x in region, j != target}
    /// (y_target(x) - y_j(x))`, evaluated symbolically so that shared
    /// input dependencies cancel.
    pub fn margin_lower_bound(&self, target: usize) -> f64 {
        assert!(target < self.dim(), "target class out of range");
        let mut worst = f64::INFINITY;
        for j in 0..self.dim() {
            if j == target {
                continue;
            }
            let diff = self.lower[target].sub(&self.upper[j]);
            worst = worst.min(diff.min_over(&self.region));
        }
        worst
    }
}

/// Propagates a symbolic interval through a whole network.
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()`.
pub fn propagate_symbolic(net: &Network, region: &Bounds) -> SymbolicInterval {
    assert_eq!(region.dim(), net.input_dim(), "region dimension mismatch");
    let mut s = SymbolicInterval::from_region(region);
    for layer in net.layers() {
        s = match layer {
            Layer::Affine(a) => s.affine(a),
            Layer::Relu => s.relu(),
            Layer::MaxPool(p) => s.max_pool(p),
        };
    }
    s
}

/// Interval bounds on the partial derivatives `∂ y_output / ∂ x_i` of a
/// network over an input region.
///
/// Unstable ReLUs contribute a `[0, 1]` mask; max-pool routing uncertainty
/// widens the interval towards zero. The result is a vector of
/// `(lo, hi)` pairs, one per input dimension.
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()` or
/// `output >= net.output_dim()`.
pub fn gradient_bounds(net: &Network, region: &Bounds, output: usize) -> Vec<(f64, f64)> {
    assert!(output < net.output_dim(), "output index out of range");
    // Forward pass: concrete bounds before each layer (used for masks).
    let mut pre_bounds: Vec<Bounds> = Vec::with_capacity(net.layers().len() + 1);
    let mut current = crate::Interval::from_bounds(region);
    pre_bounds.push(region.clone());
    for layer in net.layers() {
        current = match layer {
            Layer::Affine(a) => current.affine(a),
            Layer::Relu => current.relu(),
            Layer::MaxPool(p) => current.max_pool(p),
        };
        pre_bounds.push(current.bounds());
    }

    // Backward pass with interval arithmetic.
    let mut glo = vec![0.0; net.output_dim()];
    let mut ghi = vec![0.0; net.output_dim()];
    glo[output] = 1.0;
    ghi[output] = 1.0;

    for (idx, layer) in net.layers().iter().enumerate().rev() {
        match layer {
            Layer::Affine(a) => {
                let (lo, hi) = interval_matvec_transpose(&a.weights, &glo, &ghi);
                glo = lo;
                ghi = hi;
            }
            Layer::Relu => {
                // The bounds entering this ReLU are the outputs of the
                // previous layer: pre_bounds[idx].
                let pre = &pre_bounds[idx];
                for i in 0..glo.len() {
                    let (l, u) = (pre.lower()[i], pre.upper()[i]);
                    if u <= 0.0 {
                        glo[i] = 0.0;
                        ghi[i] = 0.0;
                    } else if l < 0.0 {
                        // Mask in [0, 1]: interval product with [g].
                        glo[i] = glo[i].min(0.0);
                        ghi[i] = ghi[i].max(0.0);
                    }
                }
            }
            Layer::MaxPool(p) => {
                let mut nlo = vec![0.0; p.input_dim];
                let mut nhi = vec![0.0; p.input_dim];
                for (out_idx, group) in p.groups.iter().enumerate() {
                    for &i in group {
                        if group.len() == 1 {
                            nlo[i] = glo[out_idx];
                            nhi[i] = ghi[out_idx];
                        } else {
                            // The input may or may not be the winner.
                            nlo[i] = glo[out_idx].min(0.0);
                            nhi[i] = ghi[out_idx].max(0.0);
                        }
                    }
                }
                glo = nlo;
                ghi = nhi;
            }
        }
    }
    glo.into_iter().zip(ghi).collect()
}

fn interval_matvec_transpose(w: &Matrix, glo: &[f64], ghi: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut lo = vec![0.0; w.cols()];
    let mut hi = vec![0.0; w.cols()];
    for r in 0..w.rows() {
        let (gl, gh) = (glo[r], ghi[r]);
        for (c, wv) in w.row(r).iter().enumerate() {
            if *wv >= 0.0 {
                lo[c] += wv * gl;
                hi[c] += wv * gh;
            } else {
                lo[c] += wv * gh;
                hi[c] += wv * gl;
            }
        }
    }
    (lo, hi)
}

/// The "smear" values used by ReluVal's split heuristic: per input
/// dimension, `width_i * max_out max(|grad_lo|, |grad_hi|)`.
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()`.
pub fn smear_values(net: &Network, region: &Bounds) -> Vec<f64> {
    let widths = region.widths();
    let mut smear = vec![0.0f64; region.dim()];
    for out in 0..net.output_dim() {
        let grads = gradient_bounds(net, region, out);
        for (i, (lo, hi)) in grads.iter().enumerate() {
            let mag = lo.abs().max(hi.abs());
            smear[i] = smear[i].max(widths[i] * mag);
        }
    }
    smear
}

/// The input dimension with the greatest influence on output `target`
/// over `region`: `argmax_i width_i * max(|grad bounds|)`.
///
/// Used by Charon's partition policy (§6) as the alternative to splitting
/// the longest dimension.
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()` or `target` is out of
/// range.
pub fn influence_dim(net: &Network, region: &Bounds, target: usize) -> usize {
    let widths = region.widths();
    let grads = gradient_bounds(net, region, target);
    let scores: Vec<f64> = grads
        .iter()
        .zip(widths.iter())
        .map(|((lo, hi), w)| w * lo.abs().max(hi.abs()))
        .collect();
    tensor::ops::argmax(&scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::samples;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identity_symbolic_interval() {
        let region = Bounds::new(vec![0.0, -1.0], vec![1.0, 1.0]);
        let s = SymbolicInterval::from_region(&region);
        assert_eq!(s.bounds(), region);
    }

    #[test]
    fn symbolic_affine_cancels_dependencies() {
        // y = x - x == 0: symbolic intervals prove it exactly, plain
        // intervals cannot.
        let layer = AffineLayer::new(Matrix::from_rows(&[&[1.0, -1.0]]), vec![0.0]);
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        // Feed the same input twice via a duplicating first layer.
        let dup = AffineLayer::new(Matrix::from_rows(&[&[1.0], &[1.0]]), vec![0.0, 0.0]);
        let region1 = Bounds::new(vec![0.0], vec![1.0]);
        let s = SymbolicInterval::from_region(&region1)
            .affine(&dup)
            .affine(&layer);
        let (lo, hi) = s.concrete_bounds(0);
        assert_eq!((lo, hi), (0.0, 0.0));
        // Plain interval gives [-1, 1].
        let i = crate::AbstractElement::affine(
            &crate::AbstractElement::affine(
                &<crate::Interval as crate::AbstractElement>::from_bounds(&region1),
                &dup,
            ),
            &layer,
        );
        let b = crate::AbstractElement::bounds(&i);
        assert_eq!((b.lower()[0], b.upper()[0]), (-1.0, 1.0));
        let _ = region;
    }

    #[test]
    fn symbolic_verifies_xor_property() {
        // Example 3.1's property is provable with one bisection in
        // ReluVal-style analysis; here just check soundness of bounds.
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]);
        let s = propagate_symbolic(&net, &region);
        let mut rng = StdRng::seed_from_u64(3);
        let b = s.bounds();
        for _ in 0..200 {
            let x = region.sample(&mut rng);
            let y = net.eval(&x);
            for i in 0..y.len() {
                assert!(y[i] >= b.lower()[i] - 1e-9 && y[i] <= b.upper()[i] + 1e-9);
            }
        }
    }

    #[test]
    fn gradient_bounds_linear_network_exact() {
        let layer = AffineLayer::new(
            Matrix::from_rows(&[&[2.0, -3.0], &[0.5, 1.0]]),
            vec![0.0; 2],
        );
        let net = Network::new(2, vec![Layer::Affine(layer)]).unwrap();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let g0 = gradient_bounds(&net, &region, 0);
        assert_eq!(g0, vec![(2.0, 2.0), (-3.0, -3.0)]);
    }

    #[test]
    fn gradient_bounds_contain_sampled_gradients() {
        let net = nn::train::random_mlp(3, &[8, 8], 2, 21);
        let region = Bounds::linf_ball(&[0.0, 0.2, -0.3], 0.3, None);
        let gb = gradient_bounds(&net, &region, 0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seed = vec![0.0; 2];
        seed[0] = 1.0;
        for _ in 0..100 {
            let x = region.sample(&mut rng);
            let g = net.gradient(&x, &seed);
            for (i, gi) in g.iter().enumerate() {
                assert!(
                    *gi >= gb[i].0 - 1e-9 && *gi <= gb[i].1 + 1e-9,
                    "gradient {gi} outside [{}, {}]",
                    gb[i].0,
                    gb[i].1
                );
            }
        }
    }

    #[test]
    fn smear_prefers_influential_dimension() {
        // Output depends strongly on x0, weakly on x1.
        let layer = AffineLayer::new(
            Matrix::from_rows(&[&[10.0, 0.1], &[-10.0, 0.1]]),
            vec![0.0; 2],
        );
        let net = Network::new(2, vec![Layer::Affine(layer)]).unwrap();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let smear = smear_values(&net, &region);
        assert!(smear[0] > smear[1]);
        assert_eq!(influence_dim(&net, &region, 0), 0);
    }

    proptest! {
        /// Symbolic interval propagation is sound on random networks, and
        /// its margin bound never exceeds the true margin.
        #[test]
        fn symbolic_propagation_is_sound(seed in 0u64..30) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x51);
            let net = nn::train::random_mlp(3, &[7, 7], 3, seed);
            let center: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let region = Bounds::linf_ball(&center, 0.25, None);
            let s = propagate_symbolic(&net, &region);
            let b = s.bounds();
            for _ in 0..25 {
                let x = region.sample(&mut rng);
                let y = net.eval(&x);
                for i in 0..y.len() {
                    prop_assert!(y[i] >= b.lower()[i] - 1e-9);
                    prop_assert!(y[i] <= b.upper()[i] + 1e-9);
                }
                for t in 0..3 {
                    prop_assert!(s.margin_lower_bound(t) <= nn::margin(&y, t) + 1e-9);
                }
            }
        }

        /// Symbolic bounds are never looser than plain interval bounds on
        /// affine-only networks (where both are exact the test is
        /// equality; after ReLU concretization symbolic falls back to
        /// intervals, so we only require containment of the truth).
        #[test]
        fn symbolic_affine_no_looser_than_interval(seed in 0u64..20) {
            let net = nn::train::random_mlp(4, &[6], 3, seed);
            let region = Bounds::linf_ball(&[0.1; 4], 0.2, None);
            let s = propagate_symbolic(&net, &region);
            let i = crate::propagate(
                &net,
                <crate::Interval as crate::AbstractElement>::from_bounds(&region),
            );
            let sb = s.bounds();
            let ib = crate::AbstractElement::bounds(&i);
            for k in 0..3 {
                prop_assert!(sb.lower()[k] >= ib.lower()[k] - 1e-9);
                prop_assert!(sb.upper()[k] <= ib.upper()[k] + 1e-9);
            }
        }
    }
}
