use nn::{AffineLayer, MaxPoolLayer};

use crate::{AbstractElement, Bounds, ReluCoordOps, Workspace};

/// The bounded powerset domain: a disjunction of at most `budget` base
/// elements.
///
/// This implements the paper's "bounded powerset" domains (§2.3): the ReLU
/// transformer performs *case splitting* on unstable neurons — each
/// disjunct is intersected with `x_i >= 0` (identity case) and `x_i <= 0`
/// (projection-to-zero case) — for as long as the disjunct budget allows,
/// and falls back to the base domain's single-element ReLU relaxation for
/// the remaining unstable neurons.
///
/// Splitting targets the unstable neurons with the widest straddling range
/// first, which is where the relaxation would lose the most precision.
///
/// # Examples
///
/// ```
/// use domains::{propagate, AbstractElement, Bounds, Powerset, Zonotope};
/// use nn::samples;
///
/// // Example 2.3 of the paper: verified by powerset-of-zonotopes.
/// let net = samples::example_2_3_network();
/// let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
/// let element = Powerset::<Zonotope>::with_budget(&region, 2);
/// let out = propagate(&net, element);
/// assert!(out.margin_lower_bound(1) > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Powerset<D> {
    disjuncts: Vec<D>,
    budget: usize,
}

impl<D: ReluCoordOps> Powerset<D> {
    /// Creates a powerset element abstracting `bounds` with the given
    /// disjunct budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn with_budget(bounds: &Bounds, budget: usize) -> Self {
        assert!(budget > 0, "disjunct budget must be positive");
        Powerset {
            disjuncts: vec![D::from_bounds(bounds)],
            budget,
        }
    }

    /// The current disjuncts.
    pub fn disjuncts(&self) -> &[D] {
        &self.disjuncts
    }

    /// The disjunct budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Unstable coordinates of `d`, widest straddle first.
    fn split_order(d: &D) -> Vec<usize> {
        let mut unstable: Vec<(usize, f64)> = (0..d.dim())
            .filter_map(|i| {
                let (lo, hi) = d.coord_bounds(i);
                (lo < 0.0 && hi > 0.0).then(|| (i, hi.min(-lo)))
            })
            .collect();
        unstable.sort_by(|a, b| b.1.total_cmp(&a.1));
        unstable.into_iter().map(|(i, _)| i).collect()
    }
}

impl<D: ReluCoordOps> AbstractElement for Powerset<D> {
    fn from_bounds(bounds: &Bounds) -> Self {
        // Default budget of 2 disjuncts; use `with_budget` to configure.
        Powerset::with_budget(bounds, 2)
    }

    fn dim(&self) -> usize {
        self.disjuncts.first().map_or(0, AbstractElement::dim)
    }

    fn bounds(&self) -> Bounds {
        let mut iter = self.disjuncts.iter().map(AbstractElement::bounds);
        let first = iter.next().expect("powerset is never empty");
        iter.fold(first, |acc, b| acc.join(&b))
    }

    fn affine(&self, layer: &AffineLayer) -> Self {
        Powerset {
            disjuncts: self.disjuncts.iter().map(|d| d.affine(layer)).collect(),
            budget: self.budget,
        }
    }

    fn affine_ws(&self, layer: &AffineLayer, ws: &mut Workspace) -> Self {
        Powerset {
            disjuncts: self
                .disjuncts
                .iter()
                .map(|d| d.affine_ws(layer, ws))
                .collect(),
            budget: self.budget,
        }
    }

    fn recycle(self, ws: &mut Workspace) {
        for d in self.disjuncts {
            d.recycle(ws);
        }
    }

    fn relu(&self) -> Self {
        let mut current = self.disjuncts.clone();
        // Process each disjunct coordinate-by-coordinate. Splitting is
        // global across the element: we stop splitting once the total
        // number of disjuncts reaches the budget.
        let mut result: Vec<D> = Vec::new();
        while let Some(mut d) = current.pop() {
            let order = Self::split_order(&d);
            let mut split_done = false;
            for &i in &order {
                let (lo, hi) = d.coord_bounds(i);
                if hi <= 0.0 {
                    d.project_zero(i);
                    continue;
                }
                if lo >= 0.0 {
                    continue;
                }
                let live = current.len() + result.len() + 1;
                if live < self.budget {
                    // Case split: x_i <= 0 branch projects to zero,
                    // x_i >= 0 branch keeps the coordinate.
                    let neg = d.meet_coord_nonpos(i).map(|mut m| {
                        m.project_zero(i);
                        m
                    });
                    let pos = d.meet_coord_nonneg(i);
                    match (neg, pos) {
                        (Some(n), Some(p)) => {
                            current.push(n);
                            current.push(p);
                            split_done = true;
                            break;
                        }
                        (Some(mut only), None) | (None, Some(mut only)) => {
                            // One side empty: finish this coordinate on
                            // the surviving branch and keep going.
                            let (l2, h2) = only.coord_bounds(i);
                            if h2 <= 0.0 {
                                only.project_zero(i);
                            } else if l2 < 0.0 {
                                only.relax_relu_coord(i, l2, h2);
                            }
                            d = only;
                        }
                        (None, None) => {
                            // Disjunct is empty; drop it.
                            split_done = true;
                            break;
                        }
                    }
                } else {
                    d.relax_relu_coord(i, lo, hi);
                }
            }
            if !split_done {
                // All coordinates resolved (stable ones are handled here
                // too: project non-positive coordinates that were not in
                // the unstable order).
                for i in 0..d.dim() {
                    let (lo, hi) = d.coord_bounds(i);
                    if hi <= 0.0 && (lo != 0.0 || hi != 0.0) {
                        d.project_zero(i);
                    }
                }
                result.push(d);
            }
        }
        assert!(!result.is_empty(), "powerset relu emptied all disjuncts");
        Powerset {
            disjuncts: result,
            budget: self.budget,
        }
    }

    fn max_pool(&self, layer: &MaxPoolLayer) -> Self {
        Powerset {
            disjuncts: self.disjuncts.iter().map(|d| d.max_pool(layer)).collect(),
            budget: self.budget,
        }
    }

    fn margin_lower_bound(&self, target: usize) -> f64 {
        self.disjuncts
            .iter()
            .map(|d| d.margin_lower_bound(target))
            .fold(f64::INFINITY, f64::min)
    }

    fn is_poisoned(&self) -> bool {
        self.disjuncts.iter().any(|d| d.is_poisoned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{propagate, Interval, Zonotope};
    use nn::samples;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn unit_box(dim: usize) -> Bounds {
        Bounds::new(vec![0.0; dim], vec![1.0; dim])
    }

    #[test]
    fn powerset_zonotope_verifies_example_2_3() {
        let net = samples::example_2_3_network();
        let element = Powerset::<Zonotope>::with_budget(&unit_box(2), 2);
        let out = propagate(&net, element);
        assert!(out.margin_lower_bound(1) > 0.0);
    }

    #[test]
    fn powerset_interval_tighter_than_plain_interval() {
        let net = samples::example_2_3_network();
        let plain = propagate(&net, Interval::from_bounds(&unit_box(2)));
        let split = propagate(&net, Powerset::<Interval>::with_budget(&unit_box(2), 8));
        assert!(split.margin_lower_bound(1) >= plain.margin_lower_bound(1));
    }

    #[test]
    fn budget_is_respected() {
        let net = nn::train::random_mlp(4, &[12, 12], 3, 9);
        let region = Bounds::linf_ball(&[0.1, -0.2, 0.3, 0.0], 0.5, None);
        for budget in [1, 2, 4] {
            let out = propagate(&net, Powerset::<Zonotope>::with_budget(&region, budget));
            assert!(
                out.disjuncts().len() <= budget,
                "{} disjuncts exceed budget {budget}",
                out.disjuncts().len()
            );
        }
    }

    #[test]
    fn budget_one_matches_base_domain() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]);
        let base = propagate(&net, Zonotope::from_bounds(&region));
        let ps = propagate(&net, Powerset::<Zonotope>::with_budget(&region, 1));
        assert_eq!(ps.disjuncts().len(), 1);
        assert!(
            (ps.margin_lower_bound(1) - base.margin_lower_bound(1)).abs() < 1e-12,
            "budget-1 powerset should degenerate to the base domain"
        );
    }

    proptest! {
        /// Soundness: powerset propagation over-approximates concrete
        /// execution on random networks, for both base domains.
        #[test]
        fn powerset_propagation_is_sound(seed in 0u64..30) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
            let net = nn::train::random_mlp(3, &[6, 6], 3, seed);
            let center: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let region = Bounds::linf_ball(&center, 0.3, None);

            let zps = propagate(&net, Powerset::<Zonotope>::with_budget(&region, 4));
            let ips = propagate(&net, Powerset::<Interval>::with_budget(&region, 4));
            let zb = zps.bounds();
            let ib = ips.bounds();
            for _ in 0..25 {
                let x = region.sample(&mut rng);
                let y = net.eval(&x);
                for i in 0..y.len() {
                    prop_assert!(y[i] >= zb.lower()[i] - 1e-9 && y[i] <= zb.upper()[i] + 1e-9);
                    prop_assert!(y[i] >= ib.lower()[i] - 1e-9 && y[i] <= ib.upper()[i] + 1e-9);
                }
                for t in 0..3 {
                    prop_assert!(zps.margin_lower_bound(t) <= nn::margin(&y, t) + 1e-9);
                    prop_assert!(ips.margin_lower_bound(t) <= nn::margin(&y, t) + 1e-9);
                }
            }
        }
    }
}
