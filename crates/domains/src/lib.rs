//! Abstract domains and sound transformers for ReLU networks.
//!
//! This crate replaces the ELINA library used by the original Charon tool.
//! It provides:
//!
//! * [`Bounds`] — axis-aligned boxes describing input regions,
//! * the [`AbstractElement`] trait — abstract values propagated through a
//!   network,
//! * [`Interval`] — the box domain,
//! * [`Zonotope`] — center-symmetric polytopes with the λ-relaxation ReLU
//!   transformer,
//! * [`Powerset`] — bounded disjunctions of either base domain, with
//!   ReLU case splitting (the paper's "bounded powerset" domains),
//! * [`deeppoly`] — a DeepPoly-style back-substitution domain (the
//!   "broader set of abstract domains" extension proposed in §9),
//! * [`symbolic`] — ReluVal-style symbolic interval propagation and
//!   interval gradient analysis (used both by the ReluVal baseline and by
//!   Charon's "influence" split heuristic).
//!
//! The top-level entry points are [`propagate`], which pushes an abstract
//! element through a network, and [`analyze`], which checks a robustness
//! property under a [`DomainChoice`].
//!
//! # Soundness
//!
//! Every transformer over-approximates its concrete counterpart: if
//! `x ∈ γ(a)` then `layer(x) ∈ γ(transform(a))`. The property tests in this
//! crate check this by sampling concrete points.
//!
//! # Examples
//!
//! ```
//! use domains::{analyze, Bounds, DomainChoice};
//! use nn::samples;
//!
//! let net = samples::example_2_2_network();
//! // Example 2.2: robust on [-1, 1] for class 1.
//! let region = Bounds::new(vec![-1.0], vec![1.0]);
//! assert!(analyze(&net, &region, 1, DomainChoice::zonotope()));
//! ```

// Numeric kernels in this crate co-index several arrays at once; index
// loops are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]

mod bounds;
mod interval;
mod powerset;
mod zonotope;

pub mod deeppoly;
pub mod symbolic;

pub use bounds::Bounds;
pub use interval::Interval;
pub use powerset::Powerset;
pub use zonotope::Zonotope;

use nn::{Layer, Network};

/// An abstract value that can be propagated through a ReLU network.
///
/// Implementations must be *sound*: the concretization of the result of
/// each transformer contains the image of the concretization of the input.
pub trait AbstractElement: Clone + std::fmt::Debug + Sized {
    /// Abstracts an axis-aligned box.
    fn from_bounds(bounds: &Bounds) -> Self;

    /// Dimension of the space the element lives in.
    fn dim(&self) -> usize;

    /// Tightest box containing the concretization.
    fn bounds(&self) -> Bounds;

    /// Abstract affine transformer for `y = W x + b`.
    fn affine(&self, layer: &nn::AffineLayer) -> Self;

    /// Abstract ReLU transformer (applied to every coordinate).
    fn relu(&self) -> Self;

    /// Abstract max-pool transformer.
    fn max_pool(&self, layer: &nn::MaxPoolLayer) -> Self;

    /// A sound lower bound on `min over the element of (y_target - y_j)`
    /// for the worst `j != target`.
    ///
    /// If this is positive, every concrete point abstracted by the element
    /// is classified as `target`.
    fn margin_lower_bound(&self, target: usize) -> f64;

    /// Whether the element's numeric representation contains NaN.
    ///
    /// A poisoned element no longer over-approximates anything: NaN
    /// compares false with everything, so transformers and the margin
    /// check silently lose soundness. Verifiers must treat a poisoned
    /// element as "analysis failed", never as "inconclusive". Infinite
    /// bounds are *not* poison — they are a sound (if useless)
    /// over-approximation.
    fn is_poisoned(&self) -> bool {
        false
    }
}

/// Propagates an abstract element through every layer of a network.
///
/// # Panics
///
/// Panics if `element.dim() != net.input_dim()`.
pub fn propagate<E: AbstractElement>(net: &Network, element: E) -> E {
    assert_eq!(
        element.dim(),
        net.input_dim(),
        "element dimension must match network input"
    );
    let mut current = element;
    for layer in net.layers() {
        current = match layer {
            Layer::Affine(a) => current.affine(a),
            Layer::Relu => current.relu(),
            Layer::MaxPool(p) => current.max_pool(p),
        };
    }
    current
}

/// Propagates an abstract element through a network with a per-layer
/// poisoning check.
///
/// Returns `None` as soon as any intermediate element contains NaN
/// (see [`AbstractElement::is_poisoned`]); the result of further
/// propagation would be meaningless.
///
/// # Panics
///
/// Panics if `element.dim() != net.input_dim()`.
pub fn propagate_checked<E: AbstractElement>(net: &Network, element: E) -> Option<E> {
    assert_eq!(
        element.dim(),
        net.input_dim(),
        "element dimension must match network input"
    );
    if element.is_poisoned() {
        return None;
    }
    let mut current = element;
    for layer in net.layers() {
        current = match layer {
            Layer::Affine(a) => current.affine(a),
            Layer::Relu => current.relu(),
            Layer::MaxPool(p) => current.max_pool(p),
        };
        if current.is_poisoned() {
            return None;
        }
    }
    Some(current)
}

/// The base abstract domains selectable by a verification policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseDomain {
    /// The interval (box) domain.
    Interval,
    /// The zonotope domain.
    Zonotope,
}

impl std::fmt::Display for BaseDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaseDomain::Interval => write!(f, "I"),
            BaseDomain::Zonotope => write!(f, "Z"),
        }
    }
}

/// An abstract-domain selection: a base domain plus a disjunct budget.
///
/// This mirrors the output of the paper's selection function φ^α (§4.1):
/// `(Z, 2)` is the powerset of zonotopes with at most two disjuncts and
/// `(I, 1)` is the plain interval domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DomainChoice {
    /// Base abstract domain.
    pub base: BaseDomain,
    /// Maximum number of disjuncts (1 = no disjunction).
    pub disjuncts: usize,
}

impl DomainChoice {
    /// The plain interval domain `(I, 1)`.
    pub fn interval() -> Self {
        DomainChoice {
            base: BaseDomain::Interval,
            disjuncts: 1,
        }
    }

    /// The plain zonotope domain `(Z, 1)`.
    pub fn zonotope() -> Self {
        DomainChoice {
            base: BaseDomain::Zonotope,
            disjuncts: 1,
        }
    }

    /// A bounded powerset domain over `base` with at most `disjuncts`
    /// disjuncts.
    ///
    /// # Panics
    ///
    /// Panics if `disjuncts == 0`.
    pub fn powerset(base: BaseDomain, disjuncts: usize) -> Self {
        assert!(disjuncts > 0, "disjunct budget must be positive");
        DomainChoice { base, disjuncts }
    }

    /// A rough relative cost estimate used by training-time featurization.
    pub fn cost_weight(&self) -> f64 {
        let base = match self.base {
            BaseDomain::Interval => 1.0,
            BaseDomain::Zonotope => 4.0,
        };
        base * self.disjuncts as f64
    }
}

impl std::fmt::Display for DomainChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.base, self.disjuncts)
    }
}

/// Result of a guarded abstract analysis ([`analyze_checked`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisOutcome {
    /// The abstraction proves every point of the region is classified as
    /// the target class.
    Proved,
    /// The abstraction is too coarse to decide; the region may still be
    /// safe.
    Inconclusive,
    /// NaN appeared inside the abstract computation; the result carries
    /// no information and the caller must degrade (e.g. retry on a
    /// coarser domain) rather than treat it as inconclusive.
    Poisoned,
}

/// Attempts to verify a robustness property `(region, target)` of `net`
/// using the given abstract domain.
///
/// Returns `true` if the abstract analysis proves that every point in
/// `region` is classified as `target`. A `false` result is inconclusive
/// (the abstraction may simply be too coarse). Callers that need to
/// distinguish "too coarse" from "numerically poisoned" should use
/// [`analyze_checked`].
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()` or
/// `target >= net.output_dim()`.
pub fn analyze(net: &Network, region: &Bounds, target: usize, choice: DomainChoice) -> bool {
    analyze_checked(net, region, target, choice) == AnalysisOutcome::Proved
}

/// [`analyze`] with NaN-poisoning detection: every intermediate element
/// and the final margin bound are checked for NaN, and
/// [`AnalysisOutcome::Poisoned`] is reported instead of silently
/// comparing NaN against zero.
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()` or
/// `target >= net.output_dim()`.
pub fn analyze_checked(
    net: &Network,
    region: &Bounds,
    target: usize,
    choice: DomainChoice,
) -> AnalysisOutcome {
    assert!(target < net.output_dim(), "target class out of range");
    if region.has_nan() {
        return AnalysisOutcome::Poisoned;
    }
    match (choice.base, choice.disjuncts) {
        (BaseDomain::Interval, 1) => {
            margin_outcome(propagate_checked(net, Interval::from_bounds(region)), target)
        }
        (BaseDomain::Zonotope, 1) => {
            margin_outcome(propagate_checked(net, Zonotope::from_bounds(region)), target)
        }
        (BaseDomain::Interval, k) => {
            let element = Powerset::<Interval>::with_budget(region, k);
            margin_outcome(propagate_checked(net, element), target)
        }
        (BaseDomain::Zonotope, k) => {
            let element = Powerset::<Zonotope>::with_budget(region, k);
            margin_outcome(propagate_checked(net, element), target)
        }
    }
}

fn margin_outcome<E: AbstractElement>(element: Option<E>, target: usize) -> AnalysisOutcome {
    match element {
        None => AnalysisOutcome::Poisoned,
        Some(e) => {
            let margin = e.margin_lower_bound(target);
            if margin.is_nan() {
                AnalysisOutcome::Poisoned
            } else if margin > 0.0 {
                AnalysisOutcome::Proved
            } else {
                AnalysisOutcome::Inconclusive
            }
        }
    }
}

/// Operations on a single coordinate of an abstract element, used by the
/// powerset domain to perform ReLU case splitting.
///
/// This trait is an implementation detail of [`Powerset`] but is exposed so
/// downstream code can implement new base domains.
pub trait ReluCoordOps: AbstractElement {
    /// Concrete bounds of coordinate `i`.
    fn coord_bounds(&self, i: usize) -> (f64, f64);

    /// Sets coordinate `i` to exactly zero (the negative ReLU case).
    fn project_zero(&mut self, i: usize);

    /// Applies the single-coordinate ReLU relaxation to an unstable
    /// coordinate `i` with pre-activation bounds `(lo, hi)`.
    fn relax_relu_coord(&mut self, i: usize, lo: f64, hi: f64);

    /// Restricts the element to `x_i >= 0`, returning `None` if the result
    /// is empty. The result must over-approximate `γ(self) ∩ {x_i >= 0}`.
    fn meet_coord_nonneg(&self, i: usize) -> Option<Self>;

    /// Restricts the element to `x_i <= 0`, returning `None` if the result
    /// is empty. The result must over-approximate `γ(self) ∩ {x_i <= 0}`.
    fn meet_coord_nonpos(&self, i: usize) -> Option<Self>;
}
