//! Abstract domains and sound transformers for ReLU networks.
//!
//! This crate replaces the ELINA library used by the original Charon tool.
//! It provides:
//!
//! * [`Bounds`] — axis-aligned boxes describing input regions,
//! * the [`AbstractElement`] trait — abstract values propagated through a
//!   network,
//! * [`Interval`] — the box domain,
//! * [`Zonotope`] — center-symmetric polytopes with the λ-relaxation ReLU
//!   transformer,
//! * [`Powerset`] — bounded disjunctions of either base domain, with
//!   ReLU case splitting (the paper's "bounded powerset" domains),
//! * [`deeppoly`] — a DeepPoly-style back-substitution domain (the
//!   "broader set of abstract domains" extension proposed in §9),
//! * [`symbolic`] — ReluVal-style symbolic interval propagation and
//!   interval gradient analysis (used both by the ReluVal baseline and by
//!   Charon's "influence" split heuristic).
//!
//! The top-level entry points are [`propagate`], which pushes an abstract
//! element through a network, and [`analyze`], which checks a robustness
//! property under a [`DomainChoice`].
//!
//! # Soundness
//!
//! Every transformer over-approximates its concrete counterpart: if
//! `x ∈ γ(a)` then `layer(x) ∈ γ(transform(a))`. The property tests in this
//! crate check this by sampling concrete points.
//!
//! # Workspace ownership
//!
//! The `_ws` entry points ([`propagate_checked_ws`], [`analyze_checked_ws`],
//! and the per-element `affine_ws` methods) thread a [`Workspace`] of
//! reusable scratch buffers through the propagation loop so the hot path
//! allocates nothing in steady state. The ownership rules:
//!
//! * A [`Workspace`] belongs to exactly one thread (it is deliberately not
//!   shared); parallel verifiers keep one workspace per worker.
//! * Buffers are *borrowed* from the workspace by the `_ws` constructors
//!   and must be handed back with `recycle` once the element is dead —
//!   dropping an element instead of recycling it is safe but forfeits the
//!   reuse. The propagation loops in this crate always recycle.
//! * A workspace never holds live data between calls: any buffer handed
//!   out is fully overwritten before use, so workspaces may be reused
//!   across unrelated networks and properties.
//!
//! # Numeric failure model
//!
//! The `checked` variants guard every layer transition against NaN/Inf
//! poisoning: [`analyze_checked_ws`] returns
//! [`AnalysisOutcome::Poisoned`] instead of silently propagating
//! non-finite bounds, and the verifier reacts by retrying the region on
//! the interval domain. [`propagate_checked_ws_timed`] and
//! [`analyze_checked_traced`] are the observability twins used when a
//! trace sink is attached: identical math, plus per-layer wall time.
//!
//! # Examples
//!
//! ```
//! use domains::{analyze, Bounds, DomainChoice};
//! use nn::samples;
//!
//! let net = samples::example_2_2_network();
//! // Example 2.2: robust on [-1, 1] for class 1.
//! let region = Bounds::new(vec![-1.0], vec![1.0]);
//! assert!(analyze(&net, &region, 1, DomainChoice::zonotope()));
//! ```

#![warn(missing_docs)]
// Numeric kernels in this crate co-index several arrays at once; index
// loops are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]

mod bounds;
mod interval;
mod powerset;
mod zonotope;

pub mod deeppoly;
pub mod symbolic;

pub use bounds::Bounds;
pub use interval::Interval;
pub use powerset::Powerset;
pub use zonotope::Zonotope;

use nn::{Layer, Network};

/// A scratch arena of reusable `f64` buffers.
///
/// Region-level verification propagates thousands of abstract elements
/// through the same network; without reuse every affine layer allocates a
/// fresh center vector and generator matrix. A `Workspace` recycles those
/// heap buffers across layers (and across regions, when the caller keeps
/// one workspace per worker).
///
/// Ownership rules (see DESIGN.md "Performance architecture"):
///
/// * `take(len)` hands out a buffer of exactly `len` elements with
///   **unspecified contents** — callers must overwrite every element
///   (the `*_into` tensor kernels do).
/// * `give(buf)` returns a buffer to the pool; the buffer must no longer
///   be referenced anywhere else.
/// * A workspace is single-threaded state: parallel verifiers keep one
///   workspace per worker, never share one across threads.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
}

impl Workspace {
    /// Maximum number of buffers retained in the pool; beyond this,
    /// returned buffers are simply dropped.
    const MAX_POOLED: usize = 64;

    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Hands out a buffer of exactly `len` elements with unspecified
    /// contents. Prefers a pooled buffer whose capacity already fits.
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        if self.pool.is_empty() {
            return vec![0.0; len];
        }
        let idx = self
            .pool
            .iter()
            .position(|v| v.capacity() >= len)
            .unwrap_or_else(|| {
                // No buffer fits: grow the largest one instead of a
                // small one, so capacity converges on the working set.
                let mut best = 0;
                for (i, v) in self.pool.iter().enumerate() {
                    if v.capacity() > self.pool[best].capacity() {
                        best = i;
                    }
                }
                best
            });
        let mut v = self.pool.swap_remove(idx);
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, v: Vec<f64>) {
        if v.capacity() > 0 && self.pool.len() < Self::MAX_POOLED {
            self.pool.push(v);
        }
    }

    /// Number of buffers currently pooled (diagnostics / tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }
}

/// An abstract value that can be propagated through a ReLU network.
///
/// Implementations must be *sound*: the concretization of the result of
/// each transformer contains the image of the concretization of the input.
pub trait AbstractElement: Clone + std::fmt::Debug + Sized {
    /// Abstracts an axis-aligned box.
    fn from_bounds(bounds: &Bounds) -> Self;

    /// Dimension of the space the element lives in.
    fn dim(&self) -> usize;

    /// Tightest box containing the concretization.
    fn bounds(&self) -> Bounds;

    /// Abstract affine transformer for `y = W x + b`.
    fn affine(&self, layer: &nn::AffineLayer) -> Self;

    /// [`AbstractElement::affine`] writing into scratch buffers from `ws`.
    ///
    /// Must compute bit-identical results to `affine`; the default simply
    /// delegates. Domains that override this take their output buffers
    /// from the workspace instead of allocating.
    fn affine_ws(&self, layer: &nn::AffineLayer, _ws: &mut Workspace) -> Self {
        self.affine(layer)
    }

    /// Returns the element's heap buffers to `ws` for reuse.
    ///
    /// The default drops the element. Callers must only recycle elements
    /// they own exclusively (no outstanding clones sharing buffers —
    /// which `Clone` on `Vec<f64>`-backed domains never produces).
    fn recycle(self, _ws: &mut Workspace) {}

    /// Abstract ReLU transformer (applied to every coordinate).
    fn relu(&self) -> Self;

    /// Abstract max-pool transformer.
    fn max_pool(&self, layer: &nn::MaxPoolLayer) -> Self;

    /// A sound lower bound on `min over the element of (y_target - y_j)`
    /// for the worst `j != target`.
    ///
    /// If this is positive, every concrete point abstracted by the element
    /// is classified as `target`.
    fn margin_lower_bound(&self, target: usize) -> f64;

    /// Whether the element's numeric representation contains NaN.
    ///
    /// A poisoned element no longer over-approximates anything: NaN
    /// compares false with everything, so transformers and the margin
    /// check silently lose soundness. Verifiers must treat a poisoned
    /// element as "analysis failed", never as "inconclusive". Infinite
    /// bounds are *not* poison — they are a sound (if useless)
    /// over-approximation.
    fn is_poisoned(&self) -> bool {
        false
    }
}

/// Propagates an abstract element through every layer of a network.
///
/// # Panics
///
/// Panics if `element.dim() != net.input_dim()`.
pub fn propagate<E: AbstractElement>(net: &Network, element: E) -> E {
    assert_eq!(
        element.dim(),
        net.input_dim(),
        "element dimension must match network input"
    );
    let mut current = element;
    for layer in net.layers() {
        current = match layer {
            Layer::Affine(a) => current.affine(a),
            Layer::Relu => current.relu(),
            Layer::MaxPool(p) => current.max_pool(p),
        };
    }
    current
}

/// Propagates an abstract element through a network with a per-layer
/// poisoning check.
///
/// Returns `None` as soon as any intermediate element contains NaN
/// (see [`AbstractElement::is_poisoned`]); the result of further
/// propagation would be meaningless.
///
/// # Panics
///
/// Panics if `element.dim() != net.input_dim()`.
pub fn propagate_checked<E: AbstractElement>(net: &Network, element: E) -> Option<E> {
    assert_eq!(
        element.dim(),
        net.input_dim(),
        "element dimension must match network input"
    );
    if element.is_poisoned() {
        return None;
    }
    let mut current = element;
    for layer in net.layers() {
        current = match layer {
            Layer::Affine(a) => current.affine(a),
            Layer::Relu => current.relu(),
            Layer::MaxPool(p) => current.max_pool(p),
        };
        if current.is_poisoned() {
            return None;
        }
    }
    Some(current)
}

/// [`propagate_checked`] with a scratch [`Workspace`]: affine layers use
/// [`AbstractElement::affine_ws`] and each intermediate element's buffers
/// are recycled as soon as the next layer's output exists.
///
/// Produces bit-identical results to [`propagate_checked`].
///
/// # Panics
///
/// Panics if `element.dim() != net.input_dim()`.
pub fn propagate_checked_ws<E: AbstractElement>(
    net: &Network,
    element: E,
    ws: &mut Workspace,
) -> Option<E> {
    assert_eq!(
        element.dim(),
        net.input_dim(),
        "element dimension must match network input"
    );
    if element.is_poisoned() {
        return None;
    }
    let mut current = element;
    for layer in net.layers() {
        let next = match layer {
            Layer::Affine(a) => current.affine_ws(a, ws),
            Layer::Relu => current.relu(),
            Layer::MaxPool(p) => current.max_pool(p),
        };
        current.recycle(ws);
        current = next;
        if current.is_poisoned() {
            return None;
        }
    }
    Some(current)
}

/// [`propagate_checked_ws`] with per-layer wall-clock timing: the
/// duration of each layer transformer (plus its poisoning check) is
/// pushed onto `layer_seconds` in layer order.
///
/// This is the tracing-only entry point — the untimed
/// [`propagate_checked_ws`] stays free of `Instant` reads so the hot
/// path is unchanged when telemetry is disabled. Produces bit-identical
/// elements to [`propagate_checked_ws`]; on early poisoning exit,
/// `layer_seconds` covers only the layers that ran.
///
/// # Panics
///
/// Panics if `element.dim() != net.input_dim()`.
pub fn propagate_checked_ws_timed<E: AbstractElement>(
    net: &Network,
    element: E,
    ws: &mut Workspace,
    layer_seconds: &mut Vec<f64>,
) -> Option<E> {
    use std::time::Instant;
    assert_eq!(
        element.dim(),
        net.input_dim(),
        "element dimension must match network input"
    );
    if element.is_poisoned() {
        return None;
    }
    let mut current = element;
    for layer in net.layers() {
        let start = Instant::now();
        let next = match layer {
            Layer::Affine(a) => current.affine_ws(a, ws),
            Layer::Relu => current.relu(),
            Layer::MaxPool(p) => current.max_pool(p),
        };
        current.recycle(ws);
        current = next;
        let poisoned = current.is_poisoned();
        layer_seconds.push(start.elapsed().as_secs_f64());
        if poisoned {
            return None;
        }
    }
    Some(current)
}

/// The base abstract domains selectable by a verification policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaseDomain {
    /// The interval (box) domain.
    Interval,
    /// The zonotope domain.
    Zonotope,
}

impl std::fmt::Display for BaseDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaseDomain::Interval => write!(f, "I"),
            BaseDomain::Zonotope => write!(f, "Z"),
        }
    }
}

/// An abstract-domain selection: a base domain plus a disjunct budget.
///
/// This mirrors the output of the paper's selection function φ^α (§4.1):
/// `(Z, 2)` is the powerset of zonotopes with at most two disjuncts and
/// `(I, 1)` is the plain interval domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DomainChoice {
    /// Base abstract domain.
    pub base: BaseDomain,
    /// Maximum number of disjuncts (1 = no disjunction).
    pub disjuncts: usize,
}

impl DomainChoice {
    /// The plain interval domain `(I, 1)`.
    pub fn interval() -> Self {
        DomainChoice {
            base: BaseDomain::Interval,
            disjuncts: 1,
        }
    }

    /// The plain zonotope domain `(Z, 1)`.
    pub fn zonotope() -> Self {
        DomainChoice {
            base: BaseDomain::Zonotope,
            disjuncts: 1,
        }
    }

    /// A bounded powerset domain over `base` with at most `disjuncts`
    /// disjuncts.
    ///
    /// # Panics
    ///
    /// Panics if `disjuncts == 0`.
    pub fn powerset(base: BaseDomain, disjuncts: usize) -> Self {
        assert!(disjuncts > 0, "disjunct budget must be positive");
        DomainChoice { base, disjuncts }
    }

    /// A rough relative cost estimate used by training-time featurization.
    pub fn cost_weight(&self) -> f64 {
        let base = match self.base {
            BaseDomain::Interval => 1.0,
            BaseDomain::Zonotope => 4.0,
        };
        base * self.disjuncts as f64
    }
}

impl std::fmt::Display for DomainChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.base, self.disjuncts)
    }
}

/// Result of a guarded abstract analysis ([`analyze_checked`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisOutcome {
    /// The abstraction proves every point of the region is classified as
    /// the target class.
    Proved,
    /// The abstraction is too coarse to decide; the region may still be
    /// safe.
    Inconclusive,
    /// NaN appeared inside the abstract computation; the result carries
    /// no information and the caller must degrade (e.g. retry on a
    /// coarser domain) rather than treat it as inconclusive.
    Poisoned,
}

/// Attempts to verify a robustness property `(region, target)` of `net`
/// using the given abstract domain.
///
/// Returns `true` if the abstract analysis proves that every point in
/// `region` is classified as `target`. A `false` result is inconclusive
/// (the abstraction may simply be too coarse). Callers that need to
/// distinguish "too coarse" from "numerically poisoned" should use
/// [`analyze_checked`].
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()` or
/// `target >= net.output_dim()`.
pub fn analyze(net: &Network, region: &Bounds, target: usize, choice: DomainChoice) -> bool {
    analyze_checked(net, region, target, choice) == AnalysisOutcome::Proved
}

/// [`analyze`] with NaN-poisoning detection: every intermediate element
/// and the final margin bound are checked for NaN, and
/// [`AnalysisOutcome::Poisoned`] is reported instead of silently
/// comparing NaN against zero.
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()` or
/// `target >= net.output_dim()`.
pub fn analyze_checked(
    net: &Network,
    region: &Bounds,
    target: usize,
    choice: DomainChoice,
) -> AnalysisOutcome {
    analyze_checked_ws(net, region, target, choice, &mut Workspace::new())
}

/// [`analyze_checked`] with a caller-provided scratch [`Workspace`], so
/// repeated analyses (worklist verification) reuse heap buffers across
/// regions instead of reallocating every layer.
///
/// Produces bit-identical outcomes to [`analyze_checked`].
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()` or
/// `target >= net.output_dim()`.
pub fn analyze_checked_ws(
    net: &Network,
    region: &Bounds,
    target: usize,
    choice: DomainChoice,
    ws: &mut Workspace,
) -> AnalysisOutcome {
    analyze_margin_checked_ws(net, region, target, choice, ws).0
}

/// [`analyze_checked_ws`] that additionally reports the margin lower
/// bound the abstraction derived.
///
/// The second component is the value of
/// [`AbstractElement::margin_lower_bound`] on the propagated element: it
/// is positive exactly when the outcome is [`AnalysisOutcome::Proved`],
/// non-positive when [`AnalysisOutcome::Inconclusive`], and NaN when
/// [`AnalysisOutcome::Poisoned`] (or when the region itself contains
/// NaN). Proof-certificate emission records this margin per verified
/// leaf so an auditor can cross-check the claim.
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()` or
/// `target >= net.output_dim()`.
pub fn analyze_margin_checked_ws(
    net: &Network,
    region: &Bounds,
    target: usize,
    choice: DomainChoice,
    ws: &mut Workspace,
) -> (AnalysisOutcome, f64) {
    assert!(target < net.output_dim(), "target class out of range");
    if region.has_nan() {
        return (AnalysisOutcome::Poisoned, f64::NAN);
    }
    match (choice.base, choice.disjuncts) {
        (BaseDomain::Interval, 1) => margin_outcome_margin_ws(
            propagate_checked_ws(net, Interval::from_bounds(region), ws),
            target,
            ws,
        ),
        (BaseDomain::Zonotope, 1) => margin_outcome_margin_ws(
            propagate_checked_ws(net, Zonotope::from_bounds(region), ws),
            target,
            ws,
        ),
        (BaseDomain::Interval, k) => {
            let element = Powerset::<Interval>::with_budget(region, k);
            margin_outcome_margin_ws(propagate_checked_ws(net, element, ws), target, ws)
        }
        (BaseDomain::Zonotope, k) => {
            let element = Powerset::<Zonotope>::with_budget(region, k);
            margin_outcome_margin_ws(propagate_checked_ws(net, element, ws), target, ws)
        }
    }
}

/// [`analyze_checked_ws`] with per-layer wall-clock timing (see
/// [`propagate_checked_ws_timed`]): each layer's duration is appended to
/// `layer_seconds` in layer order.
///
/// Tracing-only entry point; produces bit-identical outcomes to
/// [`analyze_checked_ws`].
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()` or
/// `target >= net.output_dim()`.
pub fn analyze_checked_traced(
    net: &Network,
    region: &Bounds,
    target: usize,
    choice: DomainChoice,
    ws: &mut Workspace,
    layer_seconds: &mut Vec<f64>,
) -> AnalysisOutcome {
    assert!(target < net.output_dim(), "target class out of range");
    if region.has_nan() {
        return AnalysisOutcome::Poisoned;
    }
    match (choice.base, choice.disjuncts) {
        (BaseDomain::Interval, 1) => margin_outcome_ws(
            propagate_checked_ws_timed(net, Interval::from_bounds(region), ws, layer_seconds),
            target,
            ws,
        ),
        (BaseDomain::Zonotope, 1) => margin_outcome_ws(
            propagate_checked_ws_timed(net, Zonotope::from_bounds(region), ws, layer_seconds),
            target,
            ws,
        ),
        (BaseDomain::Interval, k) => {
            let element = Powerset::<Interval>::with_budget(region, k);
            margin_outcome_ws(
                propagate_checked_ws_timed(net, element, ws, layer_seconds),
                target,
                ws,
            )
        }
        (BaseDomain::Zonotope, k) => {
            let element = Powerset::<Zonotope>::with_budget(region, k);
            margin_outcome_ws(
                propagate_checked_ws_timed(net, element, ws, layer_seconds),
                target,
                ws,
            )
        }
    }
}

fn margin_outcome_ws<E: AbstractElement>(
    element: Option<E>,
    target: usize,
    ws: &mut Workspace,
) -> AnalysisOutcome {
    margin_outcome_margin_ws(element, target, ws).0
}

fn margin_outcome_margin_ws<E: AbstractElement>(
    element: Option<E>,
    target: usize,
    ws: &mut Workspace,
) -> (AnalysisOutcome, f64) {
    match element {
        None => (AnalysisOutcome::Poisoned, f64::NAN),
        Some(e) => {
            let margin = e.margin_lower_bound(target);
            e.recycle(ws);
            if margin.is_nan() {
                (AnalysisOutcome::Poisoned, f64::NAN)
            } else if margin > 0.0 {
                (AnalysisOutcome::Proved, margin)
            } else {
                (AnalysisOutcome::Inconclusive, margin)
            }
        }
    }
}


/// Operations on a single coordinate of an abstract element, used by the
/// powerset domain to perform ReLU case splitting.
///
/// This trait is an implementation detail of [`Powerset`] but is exposed so
/// downstream code can implement new base domains.
pub trait ReluCoordOps: AbstractElement {
    /// Concrete bounds of coordinate `i`.
    fn coord_bounds(&self, i: usize) -> (f64, f64);

    /// Sets coordinate `i` to exactly zero (the negative ReLU case).
    fn project_zero(&mut self, i: usize);

    /// Applies the single-coordinate ReLU relaxation to an unstable
    /// coordinate `i` with pre-activation bounds `(lo, hi)`.
    fn relax_relu_coord(&mut self, i: usize, lo: f64, hi: f64);

    /// Restricts the element to `x_i >= 0`, returning `None` if the result
    /// is empty. The result must over-approximate `γ(self) ∩ {x_i >= 0}`.
    fn meet_coord_nonneg(&self, i: usize) -> Option<Self>;

    /// Restricts the element to `x_i <= 0`, returning `None` if the result
    /// is empty. The result must over-approximate `γ(self) ∩ {x_i <= 0}`.
    fn meet_coord_nonpos(&self, i: usize) -> Option<Self>;
}
