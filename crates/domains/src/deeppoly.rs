//! A DeepPoly-style relational domain with back-substitution.
//!
//! The paper's future-work section (§9) proposes exploring "a broader set
//! of abstract domains"; this module adds the polyhedral-lite domain of
//! Singh et al. (POPL 2019), which was the natural next domain in the
//! ELINA family Charon built on. Every neuron carries *two* linear
//! bounding expressions over the previous layer (a lower and an upper
//! relational constraint); concrete bounds are obtained by substituting
//! these expressions backwards layer by layer until the input box is
//! reached.
//!
//! Compared to the zonotope domain, DeepPoly's ReLU relaxation keeps a
//! per-neuron choice of lower bound (`y >= 0` or `y >= x`, whichever has
//! smaller relaxation area) and its back-substitution recovers exact
//! affine dependencies across layers.

use nn::{AffineLayer, Layer, MaxPoolLayer, Network};

use crate::{AbstractElement, Bounds};

/// Linear expression over the neurons of one layer: `coeffs . h + constant`.
#[derive(Debug, Clone, PartialEq)]
struct Expr {
    coeffs: Vec<f64>,
    constant: f64,
}

impl Expr {
    fn constant(dim: usize, c: f64) -> Self {
        Expr {
            coeffs: vec![0.0; dim],
            constant: c,
        }
    }

    fn unit(dim: usize, i: usize, scale: f64) -> Self {
        let mut e = Expr::constant(dim, 0.0);
        e.coeffs[i] = scale;
        e
    }
}

/// The relational constraints one analyzed layer imposes on the previous
/// one, in the densest representation the layer kind allows.
///
/// Affine layers share one weight matrix between the lower and upper
/// relation (they are exact), and ReLU layers are diagonal — per-neuron
/// slopes instead of `dim` dense unit expressions. Both make the
/// back-substitution step a row-slice kernel rather than a walk over
/// `O(dim²)` mostly-zero coefficients.
#[derive(Debug, Clone)]
enum LayerRelation {
    /// `h_out = W h_prev + b`, exact in both directions.
    Affine { weights: tensor::Matrix, bias: Vec<f64> },
    /// Per-neuron bounds `lower_slope_i · x_i <= y_i <= upper_slope_i · x_i
    /// + upper_const_i`.
    Relu {
        lower_slope: Vec<f64>,
        upper_slope: Vec<f64>,
        upper_const: Vec<f64>,
    },
    /// General per-neuron expression pairs (max-pool).
    General {
        lower_expr: Vec<Expr>,
        upper_expr: Vec<Expr>,
    },
}

/// Relational bounds of one analyzed layer: the relation to the *previous*
/// layer, plus cached concrete bounds.
#[derive(Debug, Clone)]
struct LayerBounds {
    relation: LayerRelation,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

/// The DeepPoly analysis state for a whole network.
#[derive(Debug, Clone)]
pub struct DeepPoly {
    region: Bounds,
    layers: Vec<LayerBounds>,
}

impl DeepPoly {
    /// Analyzes a network over an input region.
    ///
    /// # Panics
    ///
    /// Panics if `region.dim() != net.input_dim()`.
    pub fn analyze(net: &Network, region: &Bounds) -> Self {
        assert_eq!(
            region.dim(),
            net.input_dim(),
            "region dimension must match network input"
        );
        let mut state = DeepPoly {
            region: region.clone(),
            layers: Vec::with_capacity(net.layers().len()),
        };
        // A plain interval analysis runs alongside; its bounds are
        // intersected into the cached concrete bounds at every layer.
        let mut boxes = crate::Interval::from_bounds(region);
        for layer in net.layers() {
            match layer {
                Layer::Affine(a) => {
                    boxes = crate::AbstractElement::affine(&boxes, a);
                    state.push_affine(a, &crate::AbstractElement::bounds(&boxes));
                }
                Layer::Relu => {
                    boxes = crate::AbstractElement::relu(&boxes);
                    state.push_relu(&crate::AbstractElement::bounds(&boxes));
                }
                Layer::MaxPool(p) => {
                    boxes = crate::AbstractElement::max_pool(&boxes, p);
                    state.push_max_pool(p, &crate::AbstractElement::bounds(&boxes));
                }
            }
        }
        state
    }

    /// Dimension of the most recently analyzed layer.
    fn current_dim(&self) -> usize {
        self.layers
            .last()
            .map_or(self.region.dim(), |l| l.lower.len())
    }

    /// Concrete output bounds of the network.
    pub fn bounds(&self) -> Bounds {
        match self.layers.last() {
            Some(l) => Bounds::new(l.lower.clone(), l.upper.clone()),
            None => self.region.clone(),
        }
    }

    /// Sound lower bound on the margin `min_{x, j != target}
    /// (y_target - y_j)`, computed by back-substituting the difference
    /// expression (so correlations between the two scores cancel).
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range or no layers were analyzed.
    pub fn margin_lower_bound(&self, target: usize) -> f64 {
        let dim = self.current_dim();
        assert!(target < dim, "target class out of range");
        let mut worst = f64::INFINITY;
        for j in 0..dim {
            if j == target {
                continue;
            }
            let mut diff = Expr::constant(dim, 0.0);
            diff.coeffs[target] = 1.0;
            diff.coeffs[j] = -1.0;
            let relational = self.lower_bound_of(diff, self.layers.len());
            // The cached (box-intersected) bounds give an independent
            // sound bound; take the tighter of the two.
            let boxed = match self.layers.last() {
                Some(l) => l.lower[target] - l.upper[j],
                None => f64::NEG_INFINITY,
            };
            worst = worst.min(relational.max(boxed));
        }
        worst
    }

    /// Back-substitutes `expr` (over the outputs of layer `upto - 1`)
    /// down to the input box and returns a sound lower bound.
    ///
    /// For a lower bound, positive coefficients pull in each neuron's
    /// lower relation, negative ones its upper.
    fn lower_bound_of(&self, mut expr: Expr, upto: usize) -> f64 {
        for idx in (0..upto).rev() {
            expr = match &self.layers[idx].relation {
                LayerRelation::Affine { weights, bias } => {
                    // Both relations are the exact affine map, so the
                    // substitution is one transposed matvec (row slices,
                    // zero coefficients skipped) plus the bias dot.
                    let coeffs = weights.matvec_transpose(&expr.coeffs);
                    let mut constant = expr.constant;
                    for (c, b) in expr.coeffs.iter().zip(bias.iter()) {
                        if *c != 0.0 {
                            constant += c * b;
                        }
                    }
                    Expr { coeffs, constant }
                }
                LayerRelation::Relu {
                    lower_slope,
                    upper_slope,
                    upper_const,
                } => {
                    // Diagonal relation: coordinate i of the new
                    // expression depends only on coordinate i.
                    let mut coeffs = expr.coeffs;
                    let mut constant = expr.constant;
                    for (i, c) in coeffs.iter_mut().enumerate() {
                        if *c == 0.0 {
                            continue;
                        }
                        if *c > 0.0 {
                            *c *= lower_slope[i];
                        } else {
                            constant += *c * upper_const[i];
                            *c *= upper_slope[i];
                        }
                    }
                    Expr { coeffs, constant }
                }
                LayerRelation::General {
                    lower_expr,
                    upper_expr,
                } => {
                    let prev_dim = lower_expr
                        .first()
                        .map_or(self.region.dim(), |e| e.coeffs.len());
                    let mut next = Expr::constant(prev_dim, expr.constant);
                    for (i, &c) in expr.coeffs.iter().enumerate() {
                        if c == 0.0 {
                            continue;
                        }
                        let source = if c > 0.0 {
                            &lower_expr[i]
                        } else {
                            &upper_expr[i]
                        };
                        tensor::ops::axpy(c, &source.coeffs, &mut next.coeffs);
                        next.constant += c * source.constant;
                    }
                    next
                }
            };
        }
        // Evaluate the final expression over the input box.
        let mut v = expr.constant;
        for (i, c) in expr.coeffs.iter().enumerate() {
            v += if *c >= 0.0 {
                c * self.region.lower()[i]
            } else {
                c * self.region.upper()[i]
            };
        }
        v
    }

    /// Concrete bounds of neuron `i` of the latest layer via
    /// back-substitution.
    fn concrete_bounds_of_neuron(&self, i: usize) -> (f64, f64) {
        let dim = self.current_dim();
        let lo = self.lower_bound_of(Expr::unit(dim, i, 1.0), self.layers.len());
        let hi = -self.lower_bound_of(Expr::unit(dim, i, -1.0), self.layers.len());
        (lo, hi)
    }

    fn push_affine(&mut self, a: &AffineLayer, box_bounds: &Bounds) {
        assert_eq!(
            self.current_dim(),
            a.input_dim(),
            "affine dimension mismatch"
        );
        let out = a.output_dim();
        self.layers.push(LayerBounds {
            relation: LayerRelation::Affine {
                weights: a.weights.clone(),
                bias: a.bias.clone(),
            },
            lower: vec![0.0; out],
            upper: vec![0.0; out],
        });
        self.refresh_concrete(box_bounds);
    }

    fn push_relu(&mut self, box_bounds: &Bounds) {
        let dim = self.current_dim();
        let (pre_lo, pre_hi) = match self.layers.last() {
            Some(l) => (l.lower.clone(), l.upper.clone()),
            None => (self.region.lower().to_vec(), self.region.upper().to_vec()),
        };
        let mut lower_slope = vec![0.0; dim];
        let mut upper_slope = vec![0.0; dim];
        let mut upper_const = vec![0.0; dim];
        for i in 0..dim {
            let (l, u) = (pre_lo[i], pre_hi[i]);
            if u <= 0.0 {
                // Dead neuron: y = 0 in both directions.
            } else if l >= 0.0 {
                lower_slope[i] = 1.0;
                upper_slope[i] = 1.0;
            } else {
                // Upper: the chord y <= u (x - l) / (u - l).
                let slope = u / (u - l);
                upper_slope[i] = slope;
                upper_const[i] = -slope * l;
                // Lower: y >= λ x with λ chosen to minimize relaxation
                // area (DeepPoly's heuristic): λ = 1 when u > -l else 0.
                lower_slope[i] = if u > -l { 1.0 } else { 0.0 };
            }
        }
        self.layers.push(LayerBounds {
            relation: LayerRelation::Relu {
                lower_slope,
                upper_slope,
                upper_const,
            },
            lower: vec![0.0; dim],
            upper: vec![0.0; dim],
        });
        self.refresh_concrete(box_bounds);
    }

    fn push_max_pool(&mut self, p: &MaxPoolLayer, box_bounds: &Bounds) {
        assert_eq!(
            self.current_dim(),
            p.input_dim,
            "max-pool dimension mismatch"
        );
        let in_dim = p.input_dim;
        let (pre_lo, pre_hi) = match self.layers.last() {
            Some(l) => (l.lower.clone(), l.upper.clone()),
            None => (self.region.lower().to_vec(), self.region.upper().to_vec()),
        };
        let mut lower_expr = Vec::with_capacity(p.output_dim());
        let mut upper_expr = Vec::with_capacity(p.output_dim());
        for group in &p.groups {
            let dominant = group.iter().copied().find(|&cand| {
                group
                    .iter()
                    .all(|&o| o == cand || pre_lo[cand] >= pre_hi[o])
            });
            match dominant {
                Some(idx) => {
                    lower_expr.push(Expr::unit(in_dim, idx, 1.0));
                    upper_expr.push(Expr::unit(in_dim, idx, 1.0));
                }
                None => {
                    // Lower: the max is at least any single input; pick
                    // the one with the greatest lower bound to stay
                    // relational. Upper: concrete hull.
                    let best = group
                        .iter()
                        .copied()
                        .max_by(|&a, &b| pre_lo[a].total_cmp(&pre_lo[b]))
                        .expect("non-empty pool group");
                    lower_expr.push(Expr::unit(in_dim, best, 1.0));
                    let hi = group
                        .iter()
                        .map(|&i| pre_hi[i])
                        .fold(f64::NEG_INFINITY, f64::max);
                    upper_expr.push(Expr::constant(in_dim, hi));
                }
            }
        }
        self.layers.push(LayerBounds {
            lower: vec![0.0; lower_expr.len()],
            upper: vec![0.0; upper_expr.len()],
            relation: LayerRelation::General {
                lower_expr,
                upper_expr,
            },
        });
        self.refresh_concrete(box_bounds);
    }

    /// Recomputes the cached concrete bounds of the latest layer by
    /// back-substitution, intersected with `box_bounds` (plain interval
    /// propagation of the same layer) so the domain is never looser than
    /// the box domain.
    fn refresh_concrete(&mut self, box_bounds: &Bounds) {
        let dim = self.current_dim();
        let mut lower = Vec::with_capacity(dim);
        let mut upper = Vec::with_capacity(dim);
        for i in 0..dim {
            let (l, u) = self.concrete_bounds_of_neuron(i);
            lower.push(l.max(box_bounds.lower()[i]));
            upper.push(u.min(box_bounds.upper()[i]));
        }
        let last = self.layers.last_mut().expect("refresh after push");
        last.lower = lower;
        last.upper = upper;
    }
}

/// Convenience: does DeepPoly verify that every point of `region` is
/// classified as `target`?
pub fn verifies(net: &Network, region: &Bounds, target: usize) -> bool {
    DeepPoly::analyze(net, region).margin_lower_bound(target) > 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::samples;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn exact_on_affine_networks() {
        let layer = AffineLayer::new(
            tensor::Matrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5]]),
            vec![0.5, -1.0],
        );
        let net = Network::new(2, vec![Layer::Affine(layer)]).unwrap();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let dp = DeepPoly::analyze(&net, &region);
        let b = dp.bounds();
        assert!((b.lower()[0] - (-0.5)).abs() < 1e-12);
        assert!((b.upper()[0] - 1.5).abs() < 1e-12);
        assert!((b.lower()[1] - (-1.0)).abs() < 1e-12);
        assert!((b.upper()[1] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn cancellation_across_layers() {
        // y = h1 - h2 where h1 = x, h2 = x: DeepPoly proves y == 0.
        let dup = AffineLayer::new(tensor::Matrix::from_rows(&[&[1.0], &[1.0]]), vec![0.0; 2]);
        let diff = AffineLayer::new(tensor::Matrix::from_rows(&[&[1.0, -1.0]]), vec![0.0]);
        let net = Network::new(1, vec![Layer::Affine(dup), Layer::Affine(diff)]).unwrap();
        let region = Bounds::new(vec![-5.0], vec![5.0]);
        let b = DeepPoly::analyze(&net, &region).bounds();
        assert!(b.lower()[0].abs() < 1e-12 && b.upper()[0].abs() < 1e-12);
    }

    #[test]
    fn verifies_example_2_2() {
        let net = samples::example_2_2_network();
        let region = Bounds::new(vec![-1.0], vec![1.0]);
        assert!(verifies(&net, &region, 1));
    }

    #[test]
    fn does_not_verify_falsifiable_property() {
        let net = samples::example_2_2_network();
        let region = Bounds::new(vec![-1.0], vec![2.0]);
        assert!(!verifies(&net, &region, 1));
    }

    #[test]
    fn verifies_example_2_3() {
        let net = samples::example_2_3_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        assert!(verifies(&net, &region, 1));
    }

    #[test]
    fn relu_bounds_contain_truth() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.1, 0.2], vec![0.9, 0.8]);
        let dp = DeepPoly::analyze(&net, &region);
        let b = dp.bounds();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..300 {
            let x = region.sample(&mut rng);
            let y = net.eval(&x);
            for i in 0..y.len() {
                assert!(y[i] >= b.lower()[i] - 1e-9 && y[i] <= b.upper()[i] + 1e-9);
            }
        }
    }

    #[test]
    fn handles_maxpool() {
        let pool = nn::conv::max_pool_groups(nn::conv::Shape3::new(1, 2, 2), 2);
        let head = AffineLayer::new(tensor::Matrix::from_rows(&[&[1.0], &[-1.0]]), vec![0.0; 2]);
        let net = Network::new(4, vec![Layer::MaxPool(pool), Layer::Affine(head)]).unwrap();
        let region = Bounds::new(vec![0.0; 4], vec![1.0; 4]);
        let dp = DeepPoly::analyze(&net, &region);
        let b = dp.bounds();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let x = region.sample(&mut rng);
            let y = net.eval(&x);
            for i in 0..2 {
                assert!(y[i] >= b.lower()[i] - 1e-9 && y[i] <= b.upper()[i] + 1e-9);
            }
        }
    }

    proptest! {
        /// Soundness on random deeper networks, including margins.
        #[test]
        fn deeppoly_sound_on_random_mlps(seed in 0u64..30) {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xdd);
            let net = nn::train::random_mlp(3, &[6, 6], 3, seed);
            let center: Vec<f64> = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let region = Bounds::linf_ball(&center, 0.25, None);
            let dp = DeepPoly::analyze(&net, &region);
            let b = dp.bounds();
            for _ in 0..25 {
                let x = region.sample(&mut rng);
                let y = net.eval(&x);
                for i in 0..y.len() {
                    prop_assert!(y[i] >= b.lower()[i] - 1e-9);
                    prop_assert!(y[i] <= b.upper()[i] + 1e-9);
                }
                for t in 0..3 {
                    prop_assert!(dp.margin_lower_bound(t) <= nn::margin(&y, t) + 1e-9);
                }
            }
        }

        /// DeepPoly is never looser than the plain interval domain.
        #[test]
        fn deeppoly_no_looser_than_interval(seed in 0u64..20) {
            let net = nn::train::random_mlp(4, &[8, 8], 3, seed);
            let region = Bounds::linf_ball(&[0.1; 4], 0.2, None);
            let dp = DeepPoly::analyze(&net, &region).bounds();
            let iv = crate::propagate(
                &net,
                <crate::Interval as crate::AbstractElement>::from_bounds(&region),
            );
            let ib = crate::AbstractElement::bounds(&iv);
            for k in 0..3 {
                prop_assert!(dp.lower()[k] >= ib.lower()[k] - 1e-9);
                prop_assert!(dp.upper()[k] <= ib.upper()[k] + 1e-9);
            }
        }
    }
}
