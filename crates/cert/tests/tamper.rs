//! Tampered-certificate suite and serialization/enclosure properties.
//!
//! Every way of corrupting a stored certificate that the issue calls out
//! — a flipped bound digit, a truncated split tree, a forged witness, a
//! bumped version header — must surface as a *typed* error, either at
//! parse time (structure, checksum, version) or at audit time (witness
//! re-evaluation). Alongside, property tests pin down exact round-trip
//! serialization and the soundness of the directed-rounding replay
//! against round-to-nearest evaluation.

use cert::{
    audit, directed_output_bounds, objective_upper, AuditError, AuditOptions, CertError,
    CertVerdict, Certificate, Node,
};
use domains::{propagate, AbstractElement, Bounds, Zonotope};
use nn::{samples, AffineLayer, Layer, Network};
use proptest::prelude::*;
use tensor::Matrix;

fn example_net() -> Network {
    samples::example_2_2_network()
}

fn verified_cert(net: &Network) -> Certificate {
    let root = Bounds::new(vec![-1.0], vec![1.0]);
    Certificate {
        net_hash: nn::serialize::content_hash(net),
        target: 1,
        delta: 1e-9,
        root,
        verdict: CertVerdict::Verified {
            tree: vec![
                Node::Split { dim: 0, at: 0.25 },
                Node::Leaf {
                    domain: "(Z, 1)".to_string(),
                    margin: 0.5,
                },
                Node::Leaf {
                    domain: "I".to_string(),
                    margin: 0.25,
                },
            ],
        },
    }
}

#[test]
fn intact_certificates_pass_audit() {
    let net = example_net();
    let cert = verified_cert(&net);
    let report = audit(&cert, &net, &AuditOptions::default()).expect("audit passes");
    assert!(report.verified);
    assert_eq!(report.leaves, 2);
    assert_eq!(report.splits, 1);

    // A genuine refutation: target class 0 is misclassified somewhere on
    // the region, so pick a witness and a delta its directed upper bound
    // strictly beats.
    let witness = vec![0.5];
    let f_up = objective_upper(&net, &witness, 0);
    let refuted = Certificate {
        net_hash: nn::serialize::content_hash(&net),
        target: 0,
        delta: (f_up + 1.0).max(1e-9),
        root: Bounds::new(vec![-1.0], vec![1.0]),
        verdict: CertVerdict::Refuted {
            witness,
            objective: f_up,
        },
    };
    let report = audit(&refuted, &net, &AuditOptions::default()).expect("witness accepted");
    assert!(!report.verified);
}

#[test]
fn flipped_bound_digit_is_rejected_with_a_typed_error() {
    let net = example_net();
    let text = verified_cert(&net).to_text();
    // Flip one digit of a recorded leaf margin — the semantic edit no
    // longer matches the body checksum.
    let tampered = text.replace("leaf 0.5", "leaf 8.5");
    assert_ne!(tampered, text);
    match Certificate::from_text(&tampered) {
        Err(CertError::Checksum { expected, found }) => assert_ne!(expected, found),
        other => panic!("expected Checksum error, got {other:?}"),
    }
}

#[test]
fn truncated_split_tree_is_rejected_with_a_typed_error() {
    let net = example_net();
    let text = verified_cert(&net).to_text();
    let tampered = text.replace("leaf 0.25 I\n", "");
    assert_ne!(tampered, text);
    match Certificate::from_text(&tampered) {
        Err(CertError::Malformed { reason }) => {
            assert!(reason.contains("truncated"), "unexpected reason: {reason}")
        }
        other => panic!("expected Malformed error, got {other:?}"),
    }
}

#[test]
fn bumped_version_header_is_rejected_with_a_typed_error() {
    let net = example_net();
    let text = verified_cert(&net)
        .to_text()
        .replace("charon-cert 1", "charon-cert 99");
    match Certificate::from_text(&text) {
        Err(CertError::Version { found }) => assert_eq!(found, "charon-cert 99"),
        other => panic!("expected Version error, got {other:?}"),
    }
}

#[test]
fn forged_witness_is_rejected_by_directed_reevaluation() {
    let net = example_net();
    // Class 1 is provably robust on [-1, 1], so *no* witness can refute
    // it under a tiny delta. A forger who fabricates one (and dutifully
    // recomputes the checksum, which re-serialization here does) must
    // still be caught by the strict directed F_up(x*) < delta check.
    let forged = Certificate {
        net_hash: nn::serialize::content_hash(&net),
        target: 1,
        delta: 1e-9,
        root: Bounds::new(vec![-1.0], vec![1.0]),
        verdict: CertVerdict::Refuted {
            witness: vec![0.0],
            objective: -1.0, // claimed, and fabricated
        },
    };
    let reparsed = Certificate::from_text(&forged.to_text()).expect("checksum is 'valid'");
    match audit(&reparsed, &net, &AuditOptions::default()) {
        Err(AuditError::BadWitness { .. }) => {}
        other => panic!("expected BadWitness, got {other:?}"),
    }
}

#[test]
fn wrong_network_is_rejected_with_a_typed_error() {
    let net = example_net();
    let mut cert = verified_cert(&net);
    cert.net_hash ^= 1;
    let reparsed = Certificate::from_text(&cert.to_text()).unwrap();
    match audit(&reparsed, &net, &AuditOptions::default()) {
        Err(AuditError::NetworkMismatch { .. }) => {}
        other => panic!("expected NetworkMismatch, got {other:?}"),
    }
}

#[test]
fn unsound_leaf_claim_is_rejected_by_replay() {
    let net = example_net();
    // Claim the *wrong* class is verified: the split tree is well-formed
    // and the checksum is fine, but no replay can confirm the leaves.
    let cert = Certificate {
        net_hash: nn::serialize::content_hash(&net),
        target: 0,
        delta: 1e-9,
        root: Bounds::new(vec![-1.0], vec![1.0]),
        verdict: CertVerdict::Verified {
            tree: vec![Node::Leaf {
                domain: "(Z, 1)".to_string(),
                margin: 0.5,
            }],
        },
    };
    let opts = AuditOptions {
        refine_depth: 6,
        max_refined_regions: 256,
    };
    match audit(&cert, &net, &opts) {
        Err(AuditError::UnsoundLeaf { index: 0, .. }) => {}
        other => panic!("expected UnsoundLeaf, got {other:?}"),
    }
}

/// Builds a 2-4-2 affine/ReLU/affine network from a flat parameter list.
fn net_from_params(p: &[f64]) -> Network {
    let w1 = Matrix::from_rows(&[&p[0..2], &p[2..4], &p[4..6], &p[6..8]]);
    let b1 = p[8..12].to_vec();
    let w2 = Matrix::from_rows(&[&p[12..16], &p[16..20]]);
    let b2 = p[20..22].to_vec();
    Network::new(
        2,
        vec![
            Layer::Affine(AffineLayer {
                weights: w1,
                bias: b1,
            }),
            Layer::Relu,
            Layer::Affine(AffineLayer {
                weights: w2,
                bias: b2,
            }),
        ],
    )
    .expect("valid network")
}

proptest! {
    #[test]
    fn round_trip_is_exact_for_random_certificates(
        vals in proptest::collection::vec(-1e3f64..1e3, 8),
        margins in proptest::collection::vec(0.0f64..10.0, 3),
        hash in 0u64..u64::MAX,
    ) {
        let lower: Vec<f64> = vals[0..4].iter().zip(&vals[4..8]).map(|(a, b)| a.min(*b)).collect();
        let upper: Vec<f64> = vals[0..4].iter().zip(&vals[4..8]).map(|(a, b)| a.max(*b)).collect();
        let root = Bounds::new(lower.clone(), upper.clone());
        let dim = root.longest_dim();
        let mid = 0.5 * (lower[dim] + upper[dim]);
        let tree = if lower[dim] < mid && mid < upper[dim] {
            vec![
                Node::Split { dim, at: mid },
                Node::Leaf { domain: "(Z, 2)".to_string(), margin: margins[0] },
                Node::Split { dim: 0, at: 0.5 * (lower[0] + upper[0]) },
                Node::Leaf { domain: "I".to_string(), margin: margins[1] },
                Node::Leaf { domain: "deeppoly".to_string(), margin: margins[2] },
            ]
        } else {
            vec![Node::Leaf { domain: "I".to_string(), margin: margins[0] }]
        };
        // Degenerate second split can make the tree invalid geometry-wise;
        // round-tripping is still exact — geometry is the auditor's job.
        let cert = Certificate {
            net_hash: hash,
            target: 3,
            delta: 1e-9,
            root,
            verdict: CertVerdict::Verified { tree },
        };
        let text = cert.to_text();
        let parsed = Certificate::from_text(&text).expect("round trip");
        prop_assert_eq!(&parsed, &cert);
        prop_assert_eq!(parsed.to_text(), text);

        let refuted = Certificate {
            verdict: CertVerdict::Refuted {
                witness: vals[0..4].to_vec(),
                objective: -margins[0],
            },
            ..cert
        };
        let text = refuted.to_text();
        prop_assert_eq!(Certificate::from_text(&text).expect("round trip"), refuted);
    }

    #[test]
    fn directed_replay_encloses_round_to_nearest_on_random_layers(
        params in proptest::collection::vec(-2.0f64..2.0, 22),
        centers in proptest::collection::vec(-1.0f64..1.0, 2),
        radius in 0.01f64..0.5,
        probes in proptest::collection::vec(-1.0f64..1.0, 6),
    ) {
        let net = net_from_params(&params);
        let region = Bounds::new(
            centers.iter().map(|c| c - radius).collect(),
            centers.iter().map(|c| c + radius).collect(),
        );
        let (lo, hi) = directed_output_bounds(&net, &region).expect("finite");

        // 1. Soundness against concrete evaluation: every round-to-nearest
        //    forward pass of a point inside the region lands inside the
        //    directed bounds, with NO tolerance — the outward steps must
        //    absorb all rounding themselves.
        for pair in probes.chunks(2) {
            let x: Vec<f64> = (0..2)
                .map(|i| centers[i] + radius * pair[i])
                .collect();
            let y = net.eval(&x);
            for j in 0..y.len() {
                prop_assert!(
                    lo[j] <= y[j] && y[j] <= hi[j],
                    "eval({:?})[{}] = {} escapes [{}, {}]",
                    x, j, y[j], lo[j], hi[j]
                );
            }
        }

        // 2. Enclosure of the round-to-nearest zonotope transformer: the
        //    search's own domain, run in plain f64, must fit inside the
        //    directed replay. A few ulps of slack (scaled to the bound
        //    magnitude) keeps benign λ rounding races from flagging; a
        //    real transformer bug is orders of magnitude larger.
        let rn = propagate(&net, Zonotope::from_bounds(&region)).bounds();
        for j in 0..rn.dim() {
            let scale = 1e-12 * (1.0 + rn.lower()[j].abs() + rn.upper()[j].abs());
            prop_assert!(
                lo[j] <= rn.lower()[j] + scale,
                "directed lower {} above RN zonotope lower {}",
                lo[j], rn.lower()[j]
            );
            prop_assert!(
                hi[j] >= rn.upper()[j] - scale,
                "directed upper {} below RN zonotope upper {}",
                hi[j], rn.upper()[j]
            );
        }

        // 3. The directed point objective brackets the nearest objective.
        let x = centers.clone();
        let nearest = net.objective(&x, 0);
        let f_up = objective_upper(&net, &x, 0);
        prop_assert!(f_up >= nearest);
    }
}
