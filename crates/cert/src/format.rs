//! The `charon-cert 1` proof-certificate text format.
//!
//! A certificate is a self-contained, line-oriented record of one
//! verification run: which network (by content hash) and property it is
//! about, the full region split tree the search explored, the abstract
//! domain and margin that closed each verified leaf, and — for refuted
//! runs — the concrete witness input. The format is versioned exactly
//! like `charon-ckpt`: the first line names the format and version, and
//! a reader that sees a newer version fails with a typed
//! [`CertError::Version`] instead of a generic parse error.
//!
//! Floats are printed with Rust's shortest-round-trip `{:?}` formatting,
//! so serialization is exact: `to_text` → [`Certificate::from_text`] is
//! the identity. The final `sum` line carries an FNV-1a checksum of the
//! certificate's *canonical* serialization (everything up to and
//! including the `end` line, as `to_text` prints it), so any tampering
//! with a stored certificate — even a single flipped digit — is detected
//! as [`CertError::Checksum`] before the audit checker ever looks at the
//! semantics.

use std::collections::HashMap;
use std::fmt::Write as _;

use domains::Bounds;
use nn::serialize::fnv1a;

/// Version of the certificate text format this crate reads and writes.
pub const CERT_VERSION: u32 = 1;

/// One node of a verified certificate's split tree, in preorder.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Internal node: the node's region was bisected along `dim` at `at`;
    /// the left child (upper bound replaced by `at`) follows immediately
    /// in preorder, then the complete left subtree, then the right child.
    Split {
        /// Input dimension the region was split along.
        dim: usize,
        /// Split coordinate, strictly inside the region's extent on `dim`.
        at: f64,
    },
    /// Leaf: the node's region was proved safe.
    Leaf {
        /// Display form of the abstract domain (or engine) that proved
        /// the leaf, e.g. `(Z, 2)` or `deeppoly`. Informational: the
        /// auditor replays every leaf with its own directed-rounding
        /// domain regardless of what the search used.
        domain: String,
        /// Margin lower bound the search derived for the leaf. Must be
        /// finite and non-negative; the auditor independently re-derives
        /// its own bound and never trusts this number.
        margin: f64,
    },
}

/// The verdict a certificate attests to, with its evidence.
#[derive(Debug, Clone, PartialEq)]
pub enum CertVerdict {
    /// The property holds: every leaf of the split tree was proved safe.
    Verified {
        /// The split tree in preorder (at least one node — the root
        /// itself may be a single leaf).
        tree: Vec<Node>,
    },
    /// The property is refuted by a concrete witness input.
    Refuted {
        /// Witness point, inside the root region.
        witness: Vec<f64>,
        /// Objective value `F(witness)` the search observed
        /// (round-to-nearest). Informational: the auditor re-evaluates
        /// the witness with directed rounding.
        objective: f64,
    },
}

/// A serializable proof certificate for one verification run.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// Content hash of the network the run verified
    /// ([`nn::serialize::content_hash`]); the auditor refuses to check a
    /// certificate against a different network.
    pub net_hash: u64,
    /// Target class of the robustness property.
    pub target: usize,
    /// The δ slack of the run: a witness refutes iff `F(x*) < delta`
    /// (strict, matching the verifier's validation).
    pub delta: f64,
    /// The root input region of the property.
    pub root: Bounds,
    /// The attested verdict and its evidence.
    pub verdict: CertVerdict,
}

/// Typed errors produced while reading or assembling a certificate.
#[derive(Debug, Clone, PartialEq)]
pub enum CertError {
    /// The header names a format version this reader does not support.
    Version {
        /// The header line that was found.
        found: String,
    },
    /// The text is not a structurally valid certificate.
    Malformed {
        /// Human-readable description of the first defect.
        reason: String,
    },
    /// The stored checksum does not match the certificate body.
    Checksum {
        /// Checksum recomputed from the parsed body.
        expected: u64,
        /// Checksum stored in the `sum` line.
        found: u64,
    },
    /// Reading or writing the certificate file failed.
    Io {
        /// The underlying I/O error, rendered.
        reason: String,
    },
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::Version { found } => {
                write!(
                    f,
                    "unsupported certificate version (expected 'charon-cert {CERT_VERSION}', found '{found}')"
                )
            }
            CertError::Malformed { reason } => write!(f, "malformed certificate: {reason}"),
            CertError::Checksum { expected, found } => write!(
                f,
                "certificate checksum mismatch (body hashes to {expected:016x}, sum line says {found:016x})"
            ),
            CertError::Io { reason } => write!(f, "certificate i/o error: {reason}"),
        }
    }
}

impl std::error::Error for CertError {}

fn malformed(reason: impl Into<String>) -> CertError {
    CertError::Malformed {
        reason: reason.into(),
    }
}

/// Exact-bits lookup key for a region, used to match recorded split/leaf
/// events back onto the tree during assembly. Two regions compare equal
/// iff every bound is bit-identical, which is exactly the guarantee
/// `Bounds::split_at` gives for the regions a run revisits.
pub(crate) fn bounds_key(b: &Bounds) -> Vec<u64> {
    b.lower()
        .iter()
        .chain(b.upper().iter())
        .map(|v| v.to_bits())
        .collect()
}

impl Certificate {
    /// Serializes the certificate, checksum line included.
    pub fn to_text(&self) -> String {
        let mut body = self.body_text();
        let sum = fnv1a(body.as_bytes());
        let _ = writeln!(body, "sum {sum:016x}");
        body
    }

    /// The canonical certificate body: every line except the trailing
    /// `sum`. The checksum is FNV-1a over exactly these bytes.
    fn body_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "charon-cert {CERT_VERSION}");
        let _ = writeln!(out, "net {:016x}", self.net_hash);
        let _ = writeln!(out, "target {}", self.target);
        let _ = writeln!(out, "delta {:?}", self.delta);
        let _ = writeln!(out, "dim {}", self.root.dim());
        let _ = write!(out, "root");
        for i in 0..self.root.dim() {
            let _ = write!(out, " {:?} {:?}", self.root.lower()[i], self.root.upper()[i]);
        }
        out.push('\n');
        match &self.verdict {
            CertVerdict::Verified { tree } => {
                let _ = writeln!(out, "verdict verified");
                for node in tree {
                    match node {
                        Node::Split { dim, at } => {
                            let _ = writeln!(out, "split {dim} {at:?}");
                        }
                        Node::Leaf { domain, margin } => {
                            let _ = writeln!(out, "leaf {margin:?} {domain}");
                        }
                    }
                }
            }
            CertVerdict::Refuted { witness, objective } => {
                let _ = writeln!(out, "verdict refuted");
                let _ = write!(out, "witness {objective:?}");
                for v in witness {
                    let _ = write!(out, " {v:?}");
                }
                out.push('\n');
            }
        }
        let _ = writeln!(out, "end");
        out
    }

    /// Parses a certificate, validating structure and checksum.
    ///
    /// # Errors
    ///
    /// [`CertError::Version`] if the header names another format version,
    /// [`CertError::Checksum`] if the `sum` line disagrees with the body,
    /// and [`CertError::Malformed`] for every structural defect (missing
    /// or out-of-order sections, non-finite or inverted bounds, a split
    /// tree that is truncated or has trailing nodes, bad arity).
    pub fn from_text(text: &str) -> Result<Certificate, CertError> {
        let mut lines = text.lines().map(str::trim).filter(|l| !l.is_empty());
        match lines.next() {
            Some(header) if header == format!("charon-cert {CERT_VERSION}") => {}
            Some(header) if header.starts_with("charon-cert ") => {
                return Err(CertError::Version {
                    found: header.to_string(),
                });
            }
            Some(header) => {
                return Err(malformed(format!("expected certificate header, found '{header}'")));
            }
            None => return Err(malformed("empty certificate")),
        }

        let net_hash = parse_prefixed(lines.next(), "net ", |s| {
            u64::from_str_radix(s, 16).map_err(|e| format!("bad net hash: {e}"))
        })?;
        let target = parse_prefixed(lines.next(), "target ", |s| {
            s.parse::<usize>().map_err(|e| format!("bad target: {e}"))
        })?;
        let delta = parse_prefixed(lines.next(), "delta ", |s| {
            s.parse::<f64>().map_err(|e| format!("bad delta: {e}"))
        })?;
        if !delta.is_finite() || delta < 0.0 {
            return Err(malformed(format!("delta must be finite and non-negative, got {delta:?}")));
        }
        let dim = parse_prefixed(lines.next(), "dim ", |s| {
            s.parse::<usize>().map_err(|e| format!("bad dim: {e}"))
        })?;
        if dim == 0 {
            return Err(malformed("dim must be positive"));
        }

        let root_line = lines
            .next()
            .ok_or_else(|| malformed("missing root line"))?;
        let root_body = root_line
            .strip_prefix("root")
            .ok_or_else(|| malformed(format!("expected root line, found '{root_line}'")))?;
        let vals = parse_floats(root_body, 2 * dim, "root")?;
        let mut lower = Vec::with_capacity(dim);
        let mut upper = Vec::with_capacity(dim);
        for i in 0..dim {
            let (l, u) = (vals[2 * i], vals[2 * i + 1]);
            if !l.is_finite() || !u.is_finite() {
                return Err(malformed(format!("root bound {i} is not finite")));
            }
            if l > u {
                return Err(malformed(format!("root bound {i} is inverted ({l:?} > {u:?})")));
            }
            lower.push(l);
            upper.push(u);
        }
        let root = Bounds::new(lower, upper);

        let verdict_line = lines
            .next()
            .ok_or_else(|| malformed("missing verdict line"))?;
        let verdict = match verdict_line {
            "verdict verified" => {
                let mut tree = Vec::new();
                // Number of subtrees still owed by the preorder stream: a
                // split consumes one slot and opens two, a leaf consumes
                // one. The stream is complete exactly when this hits zero.
                let mut pending = 1usize;
                loop {
                    let line = lines
                        .next()
                        .ok_or_else(|| malformed("certificate ends inside the split tree"))?;
                    if line == "end" {
                        if pending > 0 {
                            return Err(malformed(format!(
                                "truncated split tree: {pending} subtree(s) missing before 'end'"
                            )));
                        }
                        break;
                    }
                    if pending == 0 {
                        return Err(malformed(format!(
                            "split tree already complete before line '{line}'"
                        )));
                    }
                    if let Some(rest) = line.strip_prefix("split ") {
                        let mut it = rest.split_whitespace();
                        let d = it
                            .next()
                            .and_then(|s| s.parse::<usize>().ok())
                            .ok_or_else(|| malformed(format!("bad split line '{line}'")))?;
                        let at = it
                            .next()
                            .and_then(|s| s.parse::<f64>().ok())
                            .ok_or_else(|| malformed(format!("bad split line '{line}'")))?;
                        if it.next().is_some() {
                            return Err(malformed(format!("trailing tokens on split line '{line}'")));
                        }
                        if d >= dim {
                            return Err(malformed(format!("split dimension {d} out of range (dim {dim})")));
                        }
                        if !at.is_finite() {
                            return Err(malformed(format!("split coordinate is not finite on '{line}'")));
                        }
                        tree.push(Node::Split { dim: d, at });
                        pending += 1; // consumed one slot, opened two
                    } else if let Some(rest) = line.strip_prefix("leaf ") {
                        let (margin_tok, domain) = rest
                            .split_once(' ')
                            .ok_or_else(|| malformed(format!("leaf line missing domain: '{line}'")))?;
                        let margin = margin_tok
                            .parse::<f64>()
                            .map_err(|e| malformed(format!("bad leaf margin: {e}")))?;
                        let domain = domain.trim();
                        if domain.is_empty() {
                            return Err(malformed(format!("leaf line missing domain: '{line}'")));
                        }
                        tree.push(Node::Leaf {
                            domain: domain.to_string(),
                            margin,
                        });
                        pending -= 1;
                    } else {
                        return Err(malformed(format!("unexpected line in split tree: '{line}'")));
                    }
                }
                CertVerdict::Verified { tree }
            }
            "verdict refuted" => {
                let line = lines
                    .next()
                    .ok_or_else(|| malformed("missing witness line"))?;
                let body = line
                    .strip_prefix("witness")
                    .ok_or_else(|| malformed(format!("expected witness line, found '{line}'")))?;
                let vals = parse_floats(body, dim + 1, "witness")?;
                let objective = vals[0];
                let witness = vals[1..].to_vec();
                if !objective.is_finite() || witness.iter().any(|v| !v.is_finite()) {
                    return Err(malformed("witness values must be finite"));
                }
                match lines.next() {
                    Some("end") => {}
                    Some(line) => {
                        return Err(malformed(format!("expected 'end' after witness, found '{line}'")));
                    }
                    None => return Err(malformed("missing 'end' line")),
                }
                CertVerdict::Refuted { witness, objective }
            }
            other => {
                return Err(malformed(format!("expected verdict line, found '{other}'")));
            }
        };

        let cert = Certificate {
            net_hash,
            target,
            delta,
            root,
            verdict,
        };

        let sum_line = lines.next().ok_or_else(|| malformed("missing sum line"))?;
        let sum_body = sum_line
            .strip_prefix("sum ")
            .ok_or_else(|| malformed(format!("expected sum line, found '{sum_line}'")))?;
        let found = u64::from_str_radix(sum_body.trim(), 16)
            .map_err(|e| malformed(format!("bad checksum: {e}")))?;
        let expected = fnv1a(cert.body_text().as_bytes());
        if found != expected {
            return Err(CertError::Checksum { expected, found });
        }
        if let Some(extra) = lines.next() {
            return Err(malformed(format!("trailing content after sum line: '{extra}'")));
        }
        Ok(cert)
    }

    /// Writes the certificate to a file.
    ///
    /// # Errors
    ///
    /// [`CertError::Io`] if the file cannot be written.
    pub fn save(&self, path: &std::path::Path) -> Result<(), CertError> {
        std::fs::write(path, self.to_text()).map_err(|e| CertError::Io {
            reason: format!("{}: {e}", path.display()),
        })
    }

    /// Reads and parses a certificate file.
    ///
    /// # Errors
    ///
    /// [`CertError::Io`] if the file cannot be read, otherwise any
    /// [`Certificate::from_text`] error.
    pub fn load(path: &std::path::Path) -> Result<Certificate, CertError> {
        let text = std::fs::read_to_string(path).map_err(|e| CertError::Io {
            reason: format!("{}: {e}", path.display()),
        })?;
        Certificate::from_text(&text)
    }

    /// Whether this certificate attests the given property: same target
    /// class and bit-identical root region.
    pub fn matches_property(&self, region: &Bounds, target: usize) -> bool {
        self.target == target && bounds_key(&self.root) == bounds_key(region)
    }

    /// Assembles a verified certificate from the flat split/leaf records
    /// a run collected (in any order — parallel workers interleave).
    ///
    /// Returns `None` when the records do not form a complete binary
    /// split tree rooted at `root` with every recorded event used exactly
    /// once; emission is best-effort and a run that cannot account for
    /// its whole tree (e.g. one resumed from a checkpoint with several
    /// roots) simply produces no certificate.
    pub fn assemble_verified(
        net_hash: u64,
        target: usize,
        delta: f64,
        root: Bounds,
        leaves: &[LeafRecord],
        splits: &[SplitRecord],
    ) -> Option<Certificate> {
        let mut leaf_map: HashMap<Vec<u64>, &LeafRecord> = HashMap::with_capacity(leaves.len());
        for leaf in leaves {
            if leaf_map.insert(bounds_key(&leaf.region), leaf).is_some() {
                return None; // duplicate record: tree is ambiguous
            }
        }
        let mut split_map: HashMap<Vec<u64>, &SplitRecord> = HashMap::with_capacity(splits.len());
        for split in splits {
            if split_map.insert(bounds_key(&split.region), split).is_some() {
                return None;
            }
        }

        let mut tree = Vec::with_capacity(leaves.len() + splits.len());
        let mut stack = vec![root.clone()];
        let mut used_leaves = 0usize;
        let mut used_splits = 0usize;
        while let Some(region) = stack.pop() {
            let key = bounds_key(&region);
            if let Some(leaf) = leaf_map.get(&key) {
                tree.push(Node::Leaf {
                    domain: leaf.domain.clone(),
                    margin: leaf.margin,
                });
                used_leaves += 1;
            } else if let Some(split) = split_map.get(&key) {
                let d = split.dim;
                if d >= region.dim()
                    || !(region.lower()[d] < split.at && split.at < region.upper()[d])
                {
                    return None;
                }
                tree.push(Node::Split { dim: d, at: split.at });
                used_splits += 1;
                let (left, right) = region.split_at(d, split.at);
                stack.push(right);
                stack.push(left);
            } else {
                return None; // a reachable region was never recorded
            }
        }
        if used_leaves != leaves.len() || used_splits != splits.len() {
            return None; // orphan records that the tree never reaches
        }
        Some(Certificate {
            net_hash,
            target,
            delta,
            root,
            verdict: CertVerdict::Verified { tree },
        })
    }

    /// Concatenates verified shard sub-certificates into one certificate
    /// for the whole job region, reconstructing the coordinator's shard
    /// split tree between the root and the shard roots.
    ///
    /// The shard decomposition bisects the longest dimension of a region
    /// at its midpoint (see the coordinator's `shard_region`), so the
    /// intermediate splits are re-derived deterministically here; each
    /// shard certificate's root must appear exactly once as a node of
    /// that tree.
    ///
    /// # Errors
    ///
    /// [`CertError::Malformed`] if the parts disagree on network, target
    /// or delta, are not all verified, or do not tile `root`.
    pub fn merge_shards(root: &Bounds, parts: &[Certificate]) -> Result<Certificate, CertError> {
        let first = parts
            .first()
            .ok_or_else(|| malformed("no shard certificates to merge"))?;
        let mut map: HashMap<Vec<u64>, &Certificate> = HashMap::with_capacity(parts.len());
        for part in parts {
            if part.net_hash != first.net_hash
                || part.target != first.target
                || part.delta.to_bits() != first.delta.to_bits()
            {
                return Err(malformed(
                    "shard certificates disagree on network, target or delta",
                ));
            }
            if !matches!(part.verdict, CertVerdict::Verified { .. }) {
                return Err(malformed("cannot merge a non-verified shard certificate"));
            }
            if map.insert(bounds_key(&part.root), part).is_some() {
                return Err(malformed("duplicate shard certificate root"));
            }
        }

        let mut tree = Vec::new();
        let mut stack = vec![root.clone()];
        // Reaching `n` shards takes exactly `n - 1` bisections; the slack
        // guards against non-tiling parts sending the walk into regions
        // that never match.
        let mut budget = 2 * parts.len() + 8;
        let mut used = 0usize;
        while let Some(region) = stack.pop() {
            if budget == 0 {
                return Err(malformed("shard certificates do not tile the job region"));
            }
            budget -= 1;
            if let Some(part) = map.get(&bounds_key(&region)) {
                used += 1;
                if let CertVerdict::Verified { tree: sub } = &part.verdict {
                    tree.extend(sub.iter().cloned());
                }
            } else {
                let dim = region.longest_dim();
                let (lo, hi) = (region.lower()[dim], region.upper()[dim]);
                let mid = 0.5 * (lo + hi);
                if !(lo < mid && mid < hi) {
                    return Err(malformed("shard certificates do not tile the job region"));
                }
                tree.push(Node::Split { dim, at: mid });
                let (left, right) = region.split_at(dim, mid);
                stack.push(right);
                stack.push(left);
            }
        }
        if used != parts.len() {
            return Err(malformed("unreachable shard certificate root"));
        }
        Ok(Certificate {
            net_hash: first.net_hash,
            target: first.target,
            delta: first.delta,
            root: root.clone(),
            verdict: CertVerdict::Verified { tree },
        })
    }
}

/// A verified-leaf event recorded during a run: `region` was proved safe
/// by `domain` with margin lower bound `margin`.
#[derive(Debug, Clone)]
pub struct LeafRecord {
    /// The leaf's input region.
    pub region: Bounds,
    /// Display form of the proving domain/engine.
    pub domain: String,
    /// Margin lower bound the search derived (finite, non-negative).
    pub margin: f64,
}

/// A split event recorded during a run: `region` was bisected along
/// `dim` at `at`.
#[derive(Debug, Clone)]
pub struct SplitRecord {
    /// The region that was split.
    pub region: Bounds,
    /// Dimension of the bisection.
    pub dim: usize,
    /// Split coordinate.
    pub at: f64,
}

fn parse_prefixed<T>(
    line: Option<&str>,
    prefix: &str,
    parse: impl FnOnce(&str) -> Result<T, String>,
) -> Result<T, CertError> {
    let line = line.ok_or_else(|| malformed(format!("missing '{}' line", prefix.trim())))?;
    let body = line.strip_prefix(prefix).ok_or_else(|| {
        malformed(format!("expected '{}' line, found '{line}'", prefix.trim()))
    })?;
    parse(body.trim()).map_err(malformed)
}

fn parse_floats(body: &str, expected: usize, what: &str) -> Result<Vec<f64>, CertError> {
    let vals: Result<Vec<f64>, _> = body.split_whitespace().map(str::parse::<f64>).collect();
    let vals = vals.map_err(|e| malformed(format!("bad float on {what} line: {e}")))?;
    if vals.len() != expected {
        return Err(malformed(format!(
            "{what} line has {} values, expected {expected}",
            vals.len()
        )));
    }
    Ok(vals)
}
