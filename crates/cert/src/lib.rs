//! Proof certificates and the independent audit checker.
//!
//! A verifier that answers "verified" is asking to be trusted twice:
//! once that its search explored the whole region, and once that its
//! round-to-nearest float arithmetic never rounded a bound the wrong
//! way. This crate removes both leaps of faith. The search emits a
//! [`Certificate`] — the full region split tree, the domain and margin
//! that closed each verified leaf, or the concrete witness for a
//! refutation — and [`audit`] re-checks that artifact *independently*:
//! it shares no transformer code with the search and computes every
//! bound with the directed-rounding primitives in [`tensor::round`], so
//! float error can only make the audit more conservative.
//!
//! The certificate text format (`charon-cert 1`) is versioned like the
//! checkpoint format and carries an FNV-1a checksum, so corruption in a
//! cache, journal, or file copy surfaces as a typed error instead of a
//! silently-accepted proof.
//!
//! # Examples
//!
//! ```
//! use cert::{audit, AuditOptions, Certificate, CertVerdict, Node};
//! use domains::Bounds;
//! use nn::samples;
//!
//! let net = samples::example_2_2_network();
//! let cert = Certificate {
//!     net_hash: nn::serialize::content_hash(&net),
//!     target: 1,
//!     delta: 1e-9,
//!     root: Bounds::new(vec![-1.0], vec![1.0]),
//!     verdict: CertVerdict::Verified {
//!         tree: vec![Node::Leaf { domain: "(Z, 1)".to_string(), margin: 0.5 }],
//!     },
//! };
//! // Round-trips exactly, and the independent checker confirms it.
//! let parsed = Certificate::from_text(&cert.to_text()).unwrap();
//! assert!(audit(&parsed, &net, &AuditOptions::default()).unwrap().verified);
//! ```

#![warn(missing_docs)]
// Numeric code in this crate co-indexes several arrays at once; index
// loops are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]

mod audit;
mod format;

pub use audit::{
    audit, directed_margin, directed_output_bounds, objective_bounds, objective_upper, AuditError,
    AuditOptions, AuditReport,
};
pub use format::{
    CertError, CertVerdict, Certificate, LeafRecord, Node, SplitRecord, CERT_VERSION,
};

#[cfg(test)]
mod tests {
    use super::*;
    use domains::Bounds;

    fn verified_cert() -> Certificate {
        Certificate {
            net_hash: 0xdead_beef_0123_4567,
            target: 1,
            delta: 1e-9,
            root: Bounds::new(vec![0.0, -1.0], vec![1.0, 1.0]),
            verdict: CertVerdict::Verified {
                tree: vec![
                    Node::Split { dim: 1, at: 0.25 },
                    Node::Leaf {
                        domain: "(Z, 2)".to_string(),
                        margin: 0.125,
                    },
                    Node::Leaf {
                        domain: "I".to_string(),
                        margin: 0.5,
                    },
                ],
            },
        }
    }

    fn refuted_cert() -> Certificate {
        Certificate {
            net_hash: 42,
            target: 0,
            delta: 0.25,
            root: Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]),
            verdict: CertVerdict::Refuted {
                witness: vec![0.75, 0.1],
                objective: -0.325,
            },
        }
    }

    #[test]
    fn round_trip_is_exact() {
        for cert in [verified_cert(), refuted_cert()] {
            let text = cert.to_text();
            let parsed = Certificate::from_text(&text).expect("round trip");
            assert_eq!(parsed, cert);
            assert_eq!(parsed.to_text(), text);
        }
    }

    #[test]
    fn version_mismatch_is_a_typed_error_not_a_parse_failure() {
        let text = verified_cert().to_text().replace("charon-cert 1", "charon-cert 2");
        match Certificate::from_text(&text) {
            Err(CertError::Version { found }) => assert_eq!(found, "charon-cert 2"),
            other => panic!("expected Version error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_structural_defects() {
        let good = verified_cert().to_text();
        let cases: Vec<(String, &str)> = vec![
            (good.replace("target 1", "target x"), "bad target"),
            (good.replace("delta 1e-9", "delta inf"), "non-finite delta"),
            (good.replace("dim 2", "dim 0"), "zero dim"),
            (good.replace("split 1 0.25", "split 7 0.25"), "split dim out of range"),
            (good.replace("verdict verified", "verdict maybe"), "unknown verdict"),
            (good.replace("leaf 0.5 I\n", ""), "truncated tree"),
            (
                good.replace("leaf 0.5 I\n", "leaf 0.5 I\nleaf 0.5 I\n"),
                "trailing tree node",
            ),
            (good.replace("root 0.0 1.0", "root 2.0 1.0"), "inverted root bound"),
            (good.lines().filter(|l| !l.starts_with("sum")).collect::<Vec<_>>().join("\n"),
             "missing sum line"),
        ];
        for (text, what) in cases {
            match Certificate::from_text(&text) {
                Err(CertError::Malformed { .. }) => {}
                other => panic!("{what}: expected Malformed, got {other:?}"),
            }
        }
    }

    #[test]
    fn any_semantic_edit_breaks_the_checksum() {
        let good = verified_cert().to_text();
        // Edits that keep the file structurally valid but change meaning
        // must trip the checksum, not pass as a different certificate.
        let cases = [
            good.replace("leaf 0.125", "leaf 0.625"),
            good.replace("split 1 0.25", "split 0 0.25"),
            good.replace("net dead", "net d0ad"),
        ];
        for text in cases {
            assert_ne!(text, good, "edit did not apply");
            match Certificate::from_text(&text) {
                Err(CertError::Checksum { .. }) => {}
                other => panic!("expected Checksum error, got {other:?}"),
            }
        }
    }

    #[test]
    fn assembles_a_tree_from_shuffled_flat_records() {
        let root = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let (left, right) = root.split_at(0, 0.5);
        let (rl, rr) = right.split_at(1, 0.5);
        let leaf = |region: &Bounds, margin: f64| LeafRecord {
            region: region.clone(),
            domain: "Z".to_string(),
            margin,
        };
        // Records arrive in arbitrary (worker-interleaved) order.
        let leaves = vec![leaf(&rr, 0.3), leaf(&left, 0.1), leaf(&rl, 0.2)];
        let splits = vec![
            SplitRecord { region: right.clone(), dim: 1, at: 0.5 },
            SplitRecord { region: root.clone(), dim: 0, at: 0.5 },
        ];
        let cert = Certificate::assemble_verified(7, 0, 1e-9, root.clone(), &leaves, &splits)
            .expect("assembles");
        match &cert.verdict {
            CertVerdict::Verified { tree } => {
                assert_eq!(
                    tree.as_slice(),
                    &[
                        Node::Split { dim: 0, at: 0.5 },
                        Node::Leaf { domain: "Z".to_string(), margin: 0.1 },
                        Node::Split { dim: 1, at: 0.5 },
                        Node::Leaf { domain: "Z".to_string(), margin: 0.2 },
                        Node::Leaf { domain: "Z".to_string(), margin: 0.3 },
                    ]
                );
            }
            other => panic!("expected verified, got {other:?}"),
        }
        // A missing record means the tree cannot be accounted for.
        assert!(
            Certificate::assemble_verified(7, 0, 1e-9, root, &leaves[1..], &splits).is_none()
        );
    }

    #[test]
    fn merges_shard_certificates_under_the_shard_tree() {
        // shard_region(root, 2) bisects the longest dimension at its
        // midpoint; merge_shards must rebuild exactly that split.
        let root = Bounds::new(vec![0.0, 0.0], vec![2.0, 1.0]);
        let (left, right) = root.split_at(0, 1.0);
        let part = |region: &Bounds| Certificate {
            net_hash: 9,
            target: 0,
            delta: 1e-9,
            root: region.clone(),
            verdict: CertVerdict::Verified {
                tree: vec![Node::Leaf { domain: "I".to_string(), margin: 0.1 }],
            },
        };
        let merged =
            Certificate::merge_shards(&root, &[part(&right), part(&left)]).expect("merges");
        match &merged.verdict {
            CertVerdict::Verified { tree } => {
                assert_eq!(tree.len(), 3);
                assert_eq!(tree[0], Node::Split { dim: 0, at: 1.0 });
            }
            other => panic!("expected verified, got {other:?}"),
        }
        // Parts that do not tile the root are a typed failure.
        let stray = part(&Bounds::new(vec![5.0, 5.0], vec![6.0, 6.0]));
        match Certificate::merge_shards(&root, &[part(&left), stray]) {
            Err(CertError::Malformed { .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
    }
}
