//! The independent audit checker: replays a certificate with
//! outward-rounded arithmetic.
//!
//! The checker shares no code with the search: it re-implements the
//! zonotope-style abstract transformers on top of the directed-rounding
//! primitives in [`tensor::round`], so every float operation can only
//! make the computed enclosure *wider*. If the audited bound still
//! proves a leaf safe, the leaf is safe in exact real arithmetic — the
//! verdict no longer depends on trusting round-to-nearest error to
//! cancel.
//!
//! Two asymmetric checks:
//!
//! * **Verified leaves** are replayed with a directed zonotope (center,
//!   one generator per input dimension, plus a per-coordinate
//!   accumulated rounding-error radius). Because the search may have
//!   closed a leaf with a tighter domain (DeepPoly, a powerset, or the
//!   complete solver), the checker is allowed a bounded bisection
//!   refinement per leaf before declaring it unsound.
//! * **Refutation witnesses** are re-evaluated with a directed *upper*
//!   bound on the objective: the witness counts only if even the
//!   pessimistic `F_up(x*)` is strictly below δ, so rounding error can
//!   never manufacture a counterexample.

use domains::Bounds;
use nn::{AffineLayer, Layer, MaxPoolLayer, Network};
use tensor::round::{
    abs_dot_up, add_down, add_up, dot_down, dot_up, mid_rad, mul_down, mul_up, sub_down, sub_up,
};

use crate::format::{CertError, CertVerdict, Certificate, Node};

/// Budgets for the audit's per-leaf bisection refinement.
#[derive(Debug, Clone)]
pub struct AuditOptions {
    /// Maximum bisection depth below a certificate leaf before the
    /// checker gives up on it.
    pub refine_depth: usize,
    /// Total refinement regions the whole audit may explore across all
    /// leaves.
    pub max_refined_regions: usize,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            refine_depth: 24,
            max_refined_regions: 65_536,
        }
    }
}

/// Summary of a successful audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditReport {
    /// `true` for a verified certificate, `false` for a refuted one.
    pub verified: bool,
    /// Number of leaves checked (0 for refuted certificates).
    pub leaves: usize,
    /// Number of internal split nodes walked.
    pub splits: usize,
    /// Extra regions the bisection refinement had to explore beyond the
    /// certificate's own leaves.
    pub refined_regions: usize,
}

/// Typed reasons an audit rejects a certificate.
#[derive(Debug, Clone, PartialEq)]
pub enum AuditError {
    /// The certificate itself failed to parse or checksum.
    Cert(CertError),
    /// The certificate is about a different network.
    NetworkMismatch {
        /// Content hash recorded in the certificate.
        expected: u64,
        /// Content hash of the network supplied for the audit.
        found: u64,
    },
    /// The certificate's shape does not fit the network or property
    /// (dimension, target class, class count).
    Shape {
        /// Description of the mismatch.
        reason: String,
    },
    /// A split node is geometrically invalid for the region it applies
    /// to (the split-tree walk derives every region from the root, so a
    /// tampered split coordinate surfaces here).
    InvalidSplit {
        /// Preorder index of the offending node.
        index: usize,
        /// Description of the defect.
        reason: String,
    },
    /// A leaf's recorded claim is internally inconsistent (non-finite or
    /// negative margin).
    InconsistentLeaf {
        /// Preorder index of the offending node.
        index: usize,
        /// Description of the defect.
        reason: String,
    },
    /// The directed-rounding replay could not confirm a leaf within the
    /// refinement budget.
    UnsoundLeaf {
        /// Preorder index of the offending node.
        index: usize,
        /// Best (largest) directed margin lower bound the checker
        /// reached on an unconfirmed sub-region.
        margin: f64,
    },
    /// The refutation witness does not refute: it lies outside the root
    /// region, or even its pessimistic objective upper bound fails the
    /// strict `F_up(x*) < δ` test.
    BadWitness {
        /// Description of the defect.
        reason: String,
    },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::Cert(e) => write!(f, "{e}"),
            AuditError::NetworkMismatch { expected, found } => write!(
                f,
                "certificate is for network {expected:016x}, audit network hashes to {found:016x}"
            ),
            AuditError::Shape { reason } => write!(f, "certificate does not fit: {reason}"),
            AuditError::InvalidSplit { index, reason } => {
                write!(f, "invalid split at node {index}: {reason}")
            }
            AuditError::InconsistentLeaf { index, reason } => {
                write!(f, "inconsistent leaf at node {index}: {reason}")
            }
            AuditError::UnsoundLeaf { index, margin } => write!(
                f,
                "leaf at node {index} could not be confirmed (directed margin bound {margin:.6})"
            ),
            AuditError::BadWitness { reason } => write!(f, "witness rejected: {reason}"),
        }
    }
}

impl std::error::Error for AuditError {}

impl From<CertError> for AuditError {
    fn from(e: CertError) -> Self {
        AuditError::Cert(e)
    }
}

/// Audits a certificate against a network.
///
/// Checks, in order: network identity (content hash), shape, then —
/// depending on the verdict — every leaf of the split tree via directed
/// replay, or the refutation witness via a directed objective upper
/// bound.
///
/// # Errors
///
/// Any [`AuditError`]; the first defect found is reported.
pub fn audit(
    cert: &Certificate,
    net: &Network,
    opts: &AuditOptions,
) -> Result<AuditReport, AuditError> {
    let found = nn::serialize::content_hash(net);
    if found != cert.net_hash {
        return Err(AuditError::NetworkMismatch {
            expected: cert.net_hash,
            found,
        });
    }
    if cert.root.dim() != net.input_dim() {
        return Err(AuditError::Shape {
            reason: format!(
                "root region has {} dimensions, network expects {}",
                cert.root.dim(),
                net.input_dim()
            ),
        });
    }
    if net.output_dim() < 2 {
        return Err(AuditError::Shape {
            reason: "network has fewer than two output classes".to_string(),
        });
    }
    if cert.target >= net.output_dim() {
        return Err(AuditError::Shape {
            reason: format!(
                "target class {} out of range for {} outputs",
                cert.target,
                net.output_dim()
            ),
        });
    }

    match &cert.verdict {
        CertVerdict::Verified { tree } => {
            let mut stack = vec![cert.root.clone()];
            let mut leaves = 0usize;
            let mut splits = 0usize;
            let mut refined = 0usize;
            for (index, node) in tree.iter().enumerate() {
                let region = stack.pop().ok_or(AuditError::Cert(CertError::Malformed {
                    reason: "split tree has trailing nodes".to_string(),
                }))?;
                match node {
                    Node::Split { dim, at } => {
                        if *dim >= region.dim() {
                            return Err(AuditError::InvalidSplit {
                                index,
                                reason: format!("dimension {dim} out of range"),
                            });
                        }
                        let (lo, hi) = (region.lower()[*dim], region.upper()[*dim]);
                        if !(lo < *at && *at < hi) {
                            return Err(AuditError::InvalidSplit {
                                index,
                                reason: format!(
                                    "coordinate {at:?} not strictly inside [{lo:?}, {hi:?}]"
                                ),
                            });
                        }
                        let (left, right) = region.split_at(*dim, *at);
                        stack.push(right);
                        stack.push(left);
                        splits += 1;
                    }
                    Node::Leaf { margin, .. } => {
                        if !margin.is_finite() || *margin < 0.0 {
                            return Err(AuditError::InconsistentLeaf {
                                index,
                                reason: format!(
                                    "recorded margin {margin:?} is not finite and non-negative"
                                ),
                            });
                        }
                        check_leaf(net, &region, cert.target, opts, &mut refined)
                            .map_err(|margin| AuditError::UnsoundLeaf { index, margin })?;
                        leaves += 1;
                    }
                }
            }
            if !stack.is_empty() {
                return Err(AuditError::Cert(CertError::Malformed {
                    reason: "split tree is incomplete".to_string(),
                }));
            }
            Ok(AuditReport {
                verified: true,
                leaves,
                splits,
                refined_regions: refined,
            })
        }
        CertVerdict::Refuted { witness, .. } => {
            if witness.len() != cert.root.dim() {
                return Err(AuditError::BadWitness {
                    reason: format!(
                        "witness has {} coordinates, region has {}",
                        witness.len(),
                        cert.root.dim()
                    ),
                });
            }
            if !cert.root.contains(witness) {
                return Err(AuditError::BadWitness {
                    reason: "witness lies outside the root region".to_string(),
                });
            }
            let f_up = objective_upper(net, witness, cert.target);
            // NaN must fail the check, so the comparison is spelled as
            // "not strictly below" rather than `>=`.
            if f_up >= cert.delta || f_up.is_nan() {
                return Err(AuditError::BadWitness {
                    reason: format!(
                        "directed objective upper bound {f_up:.9} is not strictly below delta {:?}",
                        cert.delta
                    ),
                });
            }
            Ok(AuditReport {
                verified: false,
                leaves: 0,
                splits: 0,
                refined_regions: 0,
            })
        }
    }
}

/// Confirms one leaf region, refining by bisection when the directed
/// domain alone is too coarse. On failure returns the best directed
/// margin bound observed on an unconfirmed sub-region.
fn check_leaf(
    net: &Network,
    region: &Bounds,
    target: usize,
    opts: &AuditOptions,
    refined: &mut usize,
) -> Result<(), f64> {
    let mut work = vec![(region.clone(), 0usize)];
    while let Some((r, depth)) = work.pop() {
        let margin = directed_margin(net, &r, target);
        if margin > 0.0 {
            continue;
        }
        if depth >= opts.refine_depth || *refined >= opts.max_refined_regions {
            return Err(margin);
        }
        let dim = r.longest_dim();
        let (lo, hi) = (r.lower()[dim], r.upper()[dim]);
        let mid = 0.5 * (lo + hi);
        if !(lo < mid && mid < hi) {
            // Sub-ulp region that still cannot be confirmed: give up.
            return Err(margin);
        }
        let (left, right) = r.split_at(dim, mid);
        *refined += 2;
        work.push((left, depth + 1));
        work.push((right, depth + 1));
    }
    Ok(())
}

/// A sound directed-rounding lower bound on the margin
/// `min_{j != target} (y_target - y_j)` over `region`.
///
/// Computed by propagating a directed zonotope through the network; NaN
/// anywhere in the computation degrades to `-inf` (never to a proof).
pub fn directed_margin(net: &Network, region: &Bounds, target: usize) -> f64 {
    let mut elem = Elem::from_region(region);
    for layer in net.layers() {
        match layer {
            Layer::Affine(a) => elem = elem.affine(a),
            Layer::Relu => elem.relu(),
            Layer::MaxPool(p) => elem = elem.max_pool(p),
        }
    }
    elem.margin_lower(target)
}

/// Directed concretization bounds of the network's output over `region`:
/// per-coordinate lower and upper vectors from the checker's directed
/// zonotope. Returns `None` when the computation poisons (NaN).
///
/// Exposed for the enclosure property tests — any sound round-to-nearest
/// analysis of the same region must produce output bounds inside these
/// (up to the ulp-level slack the directed steps add).
///
/// # Panics
///
/// Panics if `region.dim() != net.input_dim()`.
pub fn directed_output_bounds(net: &Network, region: &Bounds) -> Option<(Vec<f64>, Vec<f64>)> {
    assert_eq!(region.dim(), net.input_dim(), "region dimension mismatch");
    let mut elem = Elem::from_region(region);
    for layer in net.layers() {
        match layer {
            Layer::Affine(a) => elem = elem.affine(a),
            Layer::Relu => elem.relu(),
            Layer::MaxPool(p) => elem = elem.max_pool(p),
        }
    }
    let n = elem.center.len();
    let mut lo = Vec::with_capacity(n);
    let mut hi = Vec::with_capacity(n);
    for j in 0..n {
        let radius = add_up(elem.gen_radius(j), elem.err[j]);
        let l = sub_down(elem.center[j], radius);
        let h = add_up(elem.center[j], radius);
        if l.is_nan() || h.is_nan() {
            return None;
        }
        lo.push(l);
        hi.push(h);
    }
    Some((lo, hi))
}

/// Directed interval bounds `(F_lo, F_up)` on the objective
/// `F(x) = y_target(x) - max_{j != target} y_j(x)` at a concrete point.
///
/// Every operation rounds outward, so the true real-arithmetic value of
/// `F(x)` lies inside the returned interval whatever the network's own
/// round-to-nearest evaluation produced.
///
/// # Panics
///
/// Panics if `x.len() != net.input_dim()` or `target` is out of range.
pub fn objective_bounds(net: &Network, x: &[f64], target: usize) -> (f64, f64) {
    assert_eq!(x.len(), net.input_dim(), "input dimension mismatch");
    assert!(target < net.output_dim(), "target class out of range");
    let mut lo = x.to_vec();
    let mut hi = x.to_vec();
    for layer in net.layers() {
        match layer {
            Layer::Affine(a) => {
                let m = a.weights.rows();
                let mut nlo = vec![0.0; m];
                let mut nhi = vec![0.0; m];
                for j in 0..m {
                    let row = a.weights.row(j);
                    let mut alo = a.bias[j];
                    let mut ahi = a.bias[j];
                    for i in 0..row.len() {
                        let w = row[i];
                        alo = add_down(alo, mul_down(w, lo[i]).min(mul_down(w, hi[i])));
                        ahi = add_up(ahi, mul_up(w, lo[i]).max(mul_up(w, hi[i])));
                    }
                    nlo[j] = alo;
                    nhi[j] = ahi;
                }
                lo = nlo;
                hi = nhi;
            }
            Layer::Relu => {
                for v in &mut lo {
                    *v = v.max(0.0);
                }
                for v in &mut hi {
                    *v = v.max(0.0);
                }
            }
            Layer::MaxPool(p) => {
                let mut nlo = Vec::with_capacity(p.groups.len());
                let mut nhi = Vec::with_capacity(p.groups.len());
                for group in &p.groups {
                    nlo.push(group.iter().map(|&i| lo[i]).fold(f64::NEG_INFINITY, f64::max));
                    nhi.push(group.iter().map(|&i| hi[i]).fold(f64::NEG_INFINITY, f64::max));
                }
                lo = nlo;
                hi = nhi;
            }
        }
    }
    let mut best_other_lo = f64::NEG_INFINITY;
    let mut best_other_hi = f64::NEG_INFINITY;
    for j in 0..lo.len() {
        if j == target {
            continue;
        }
        best_other_lo = best_other_lo.max(lo[j]);
        best_other_hi = best_other_hi.max(hi[j]);
    }
    (
        sub_down(lo[target], best_other_hi),
        sub_up(hi[target], best_other_lo),
    )
}

/// The directed *upper* bound on the objective at a point — the quantity
/// both the verifier's witness validation and the audit's witness check
/// compare strictly against δ, so the two can never disagree.
///
/// # Panics
///
/// Panics if `x.len() != net.input_dim()` or `target` is out of range.
pub fn objective_upper(net: &Network, x: &[f64], target: usize) -> f64 {
    objective_bounds(net, x, target).1
}

/// The directed zonotope the checker propagates: a center vector, one
/// generator per (non-degenerate) input dimension, and a per-coordinate
/// non-negative error radius that absorbs both rounding slack and the
/// ReLU relaxation's fresh noise terms. Concretization:
/// `{ c + G^T ε + e : ε ∈ [-1,1]^k, |e_j| <= err_j }`.
#[derive(Debug, Clone)]
pub(crate) struct Elem {
    center: Vec<f64>,
    gens: Vec<Vec<f64>>,
    err: Vec<f64>,
}

impl Elem {
    pub(crate) fn from_region(region: &Bounds) -> Elem {
        let n = region.dim();
        let mut center = vec![0.0; n];
        let mut gens = Vec::new();
        for i in 0..n {
            let (mid, rad) = mid_rad(region.lower()[i], region.upper()[i]);
            center[i] = mid;
            if rad > 0.0 {
                let mut g = vec![0.0; n];
                g[i] = rad;
                gens.push(g);
            }
        }
        Elem {
            center,
            gens,
            err: vec![0.0; n],
        }
    }

    pub(crate) fn affine(&self, layer: &AffineLayer) -> Elem {
        let w = &layer.weights;
        let m = w.rows();
        let mut center = vec![0.0; m];
        let mut err = vec![0.0; m];
        for j in 0..m {
            let row = w.row(j);
            let clo = add_down(dot_down(row, &self.center), layer.bias[j]);
            let chi = add_up(dot_up(row, &self.center), layer.bias[j]);
            let (mid, rad) = mid_rad_nan(clo, chi);
            center[j] = mid;
            err[j] = add_up(rad, abs_dot_up(row, &self.err));
        }
        let mut gens = Vec::with_capacity(self.gens.len());
        for g in &self.gens {
            let mut out = vec![0.0; m];
            for j in 0..m {
                let row = w.row(j);
                let (mid, rad) = mid_rad_nan(dot_down(row, g), dot_up(row, g));
                out[j] = mid;
                err[j] = add_up(err[j], rad);
            }
            gens.push(out);
        }
        Elem { center, gens, err }
    }

    /// Directed ReLU: exact on stable coordinates, λ-relaxation with the
    /// fresh noise folded into `err` on unstable ones. Any λ in `[0, 1]`
    /// yields a sound relaxation `relu(x) ∈ λx + [0, M]` with
    /// `M = max(-λ·lo, (1-λ)·hi)`, so the round-to-nearest λ needs no
    /// error analysis of its own — only the products are rounded outward.
    pub(crate) fn relu(&mut self) {
        for j in 0..self.center.len() {
            let radius = add_up(self.gen_radius(j), self.err[j]);
            let lo = sub_down(self.center[j], radius);
            let hi = add_up(self.center[j], radius);
            if lo.is_nan() || hi.is_nan() {
                // Poisoned coordinate: widen to a NaN error radius so the
                // final margin degrades to -inf instead of a false proof.
                self.err[j] = f64::NAN;
                continue;
            }
            if hi <= 0.0 {
                self.center[j] = 0.0;
                self.err[j] = 0.0;
                for g in &mut self.gens {
                    g[j] = 0.0;
                }
            } else if lo >= 0.0 {
                // Identity: unchanged.
            } else {
                let lam = (hi / (hi - lo)).clamp(0.0, 1.0);
                let m_up = mul_up(lam, -lo).max(mul_up(sub_up(1.0, lam), hi));
                let p_lo = mul_down(lam, self.center[j]);
                let p_hi = add_up(mul_up(lam, self.center[j]), m_up);
                let (mid, rad) = mid_rad_nan(p_lo, p_hi);
                self.center[j] = mid;
                let mut e = add_up(mul_up(lam, self.err[j]), rad);
                for g in &mut self.gens {
                    let scaled = lam * g[j];
                    let spread = sub_up(mul_up(lam, g[j]), scaled)
                        .max(sub_up(scaled, mul_down(lam, g[j])));
                    e = add_up(e, spread);
                    g[j] = scaled;
                }
                self.err[j] = e;
            }
        }
    }

    /// Directed max-pool: falls back to interval semantics (the
    /// relational generators are dropped), which is sound and matches
    /// how rarely pooling appears after the first layers.
    pub(crate) fn max_pool(&self, layer: &MaxPoolLayer) -> Elem {
        let mut center = Vec::with_capacity(layer.groups.len());
        let mut err = Vec::with_capacity(layer.groups.len());
        for group in &layer.groups {
            let mut glo = f64::NEG_INFINITY;
            let mut ghi = f64::NEG_INFINITY;
            for &i in group {
                let radius = add_up(self.gen_radius(i), self.err[i]);
                glo = glo.max(sub_down(self.center[i], radius));
                ghi = ghi.max(add_up(self.center[i], radius));
            }
            let (mid, rad) = mid_rad_nan(glo, ghi);
            center.push(mid);
            err.push(rad);
        }
        Elem {
            center,
            gens: Vec::new(),
            err,
        }
    }

    /// Upward-rounded sum of generator magnitudes on coordinate `j`.
    fn gen_radius(&self, j: usize) -> f64 {
        let mut acc = 0.0;
        for g in &self.gens {
            acc = add_up(acc, g[j].abs());
        }
        acc
    }

    /// Directed lower bound on `min_{j != target} (y_target - y_j)`.
    /// NaN anywhere degrades to `-inf` — a poisoned element must never
    /// read as a proof.
    pub(crate) fn margin_lower(&self, target: usize) -> f64 {
        let mut worst = f64::INFINITY;
        for j in 0..self.center.len() {
            if j == target {
                continue;
            }
            let mut dev = add_up(self.err[target], self.err[j]);
            for g in &self.gens {
                let d = sub_up(g[target], g[j])
                    .abs()
                    .max(sub_down(g[target], g[j]).abs());
                dev = add_up(dev, d);
            }
            let m = sub_down(sub_down(self.center[target], self.center[j]), dev);
            if m.is_nan() {
                return f64::NEG_INFINITY;
            }
            worst = worst.min(m);
        }
        worst
    }

    /// Directed concretization bounds of coordinate `j` (used by the
    /// enclosure property tests).
    #[cfg(test)]
    pub(crate) fn coord_bounds(&self, j: usize) -> (f64, f64) {
        let radius = add_up(self.gen_radius(j), self.err[j]);
        (
            sub_down(self.center[j], radius),
            add_up(self.center[j], radius),
        )
    }
}

/// [`mid_rad`] that tolerates NaN endpoints (poisoned upstream values)
/// by producing a NaN pair instead of panicking; the NaN then degrades
/// the final margin to `-inf` via [`Elem::margin_lower`].
fn mid_rad_nan(lo: f64, hi: f64) -> (f64, f64) {
    if lo.is_nan() || hi.is_nan() || lo > hi {
        (f64::NAN, f64::NAN)
    } else {
        mid_rad(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::samples;

    #[test]
    fn directed_margin_proves_the_paper_example() {
        // Example 2.2 is robust on [-1, 1] for class 1; the directed
        // replay must confirm it just like the search domains do.
        let net = samples::example_2_2_network();
        let region = Bounds::new(vec![-1.0], vec![1.0]);
        assert!(directed_margin(&net, &region, 1) > 0.0);
    }

    #[test]
    fn directed_element_encloses_concrete_evaluations() {
        let net = samples::example_2_2_network();
        let region = Bounds::new(vec![-1.0], vec![1.0]);
        let mut elem = Elem::from_region(&region);
        for layer in net.layers() {
            match layer {
                Layer::Affine(a) => elem = elem.affine(a),
                Layer::Relu => elem.relu(),
                Layer::MaxPool(p) => elem = elem.max_pool(p),
            }
        }
        for k in 0..=20 {
            let x = -1.0 + 0.1 * k as f64;
            let y = net.eval(&[x]);
            for j in 0..y.len() {
                let (lo, hi) = elem.coord_bounds(j);
                assert!(
                    lo <= y[j] && y[j] <= hi,
                    "eval({x}) coordinate {j} = {} escapes [{lo}, {hi}]",
                    y[j]
                );
            }
        }
    }

    #[test]
    fn objective_bounds_bracket_the_nearest_objective() {
        let net = samples::example_2_2_network();
        for k in 0..=20 {
            let x = [-1.0 + 0.1 * k as f64];
            let nearest = net.objective(&x, 1);
            let (lo, hi) = objective_bounds(&net, &x, 1);
            assert!(
                lo <= nearest && nearest <= hi,
                "objective({:?}) = {nearest} escapes [{lo}, {hi}]",
                x
            );
            assert!(hi - lo < 1e-9, "point bounds should be tight: [{lo}, {hi}]");
        }
    }
}
