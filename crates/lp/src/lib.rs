//! A dense two-phase simplex linear-programming solver.
//!
//! This crate replaces the LP engine inside the Reluplex baseline. It
//! solves problems of the form
//!
//! ```text
//! minimize    c . x
//! subject to  a_i . x (<=|=|>=) b_i      for each constraint i
//!             l_j <= x_j <= u_j          for each variable j
//! ```
//!
//! All variable bounds must be finite — in the neural-network encodings
//! they always are, because interval analysis provides concrete bounds for
//! every neuron. Internally the problem is shifted so variables are
//! non-negative, slacks and artificials are added, and a textbook
//! two-phase simplex with Bland's rule (which cannot cycle) finds the
//! optimum.
//!
//! # Examples
//!
//! ```
//! use lp::{Constraint, LpProblem, LpOutcome};
//!
//! // maximize x + y  s.t.  x + 2y <= 4, in the unit square
//! // (minimize the negation)
//! let mut p = LpProblem::new(2);
//! p.set_bounds(0, 0.0, 1.0);
//! p.set_bounds(1, 0.0, 1.0);
//! p.set_objective(vec![-1.0, -1.0]);
//! p.add_constraint(Constraint::le(vec![1.0, 2.0], 4.0));
//! match p.solve() {
//!     LpOutcome::Optimal { x, value } => {
//!         assert!((value + 2.0).abs() < 1e-9);
//!         assert!((x[0] - 1.0).abs() < 1e-9 && (x[1] - 1.0).abs() < 1e-9);
//!     }
//!     other => panic!("unexpected outcome {other:?}"),
//! }
//! ```

// Numeric kernels in this crate co-index several arrays at once; index
// loops are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]

use tensor::Matrix;

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `a . x <= b`
    Le,
    /// `a . x = b`
    Eq,
    /// `a . x >= b`
    Ge,
}

/// A linear constraint `a . x (rel) b`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Coefficient vector (length = number of variables).
    pub coeffs: Vec<f64>,
    /// The relation.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
}

impl Constraint {
    /// Creates `coeffs . x <= rhs`.
    pub fn le(coeffs: Vec<f64>, rhs: f64) -> Self {
        Constraint {
            coeffs,
            relation: Relation::Le,
            rhs,
        }
    }

    /// Creates `coeffs . x = rhs`.
    pub fn eq(coeffs: Vec<f64>, rhs: f64) -> Self {
        Constraint {
            coeffs,
            relation: Relation::Eq,
            rhs,
        }
    }

    /// Creates `coeffs . x >= rhs`.
    pub fn ge(coeffs: Vec<f64>, rhs: f64) -> Self {
        Constraint {
            coeffs,
            relation: Relation::Ge,
            rhs,
        }
    }
}

/// Outcome of solving a linear program.
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// An optimal solution was found.
    Optimal {
        /// The optimizing assignment (in the original variables).
        x: Vec<f64>,
        /// The optimal objective value.
        value: f64,
    },
    /// The constraint system is infeasible.
    Infeasible,
    /// The iteration limit was exceeded (numerically pathological input).
    IterationLimit,
}

impl LpOutcome {
    /// Whether the outcome is [`LpOutcome::Optimal`].
    pub fn is_optimal(&self) -> bool {
        matches!(self, LpOutcome::Optimal { .. })
    }
}

/// A linear program with finite variable bounds.
#[derive(Debug, Clone)]
pub struct LpProblem {
    num_vars: usize,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl LpProblem {
    /// Creates a problem over `num_vars` variables with zero objective and
    /// default bounds `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars == 0`.
    pub fn new(num_vars: usize) -> Self {
        assert!(num_vars > 0, "need at least one variable");
        LpProblem {
            num_vars,
            objective: vec![0.0; num_vars],
            constraints: Vec::new(),
            lower: vec![0.0; num_vars],
            upper: vec![1.0; num_vars],
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Sets the objective coefficients (the problem minimizes).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the variable count.
    pub fn set_objective(&mut self, objective: Vec<f64>) {
        assert_eq!(objective.len(), self.num_vars, "objective length mismatch");
        self.objective = objective;
    }

    /// Sets finite bounds for variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range, bounds are inverted, or either
    /// bound is not finite.
    pub fn set_bounds(&mut self, var: usize, lower: f64, upper: f64) {
        assert!(var < self.num_vars, "variable index out of range");
        assert!(
            lower.is_finite() && upper.is_finite(),
            "bounds must be finite (got [{lower}, {upper}])"
        );
        assert!(lower <= upper, "inverted bounds [{lower}, {upper}]");
        self.lower[var] = lower;
        self.upper[var] = upper;
    }

    /// Adds a constraint.
    ///
    /// # Panics
    ///
    /// Panics if the coefficient vector length differs from the variable
    /// count.
    pub fn add_constraint(&mut self, constraint: Constraint) {
        assert_eq!(
            constraint.coeffs.len(),
            self.num_vars,
            "constraint length mismatch"
        );
        self.constraints.push(constraint);
    }

    /// Solves the program, minimizing the objective.
    pub fn solve(&self) -> LpOutcome {
        Tableau::build(self).solve(None)
    }

    /// Solves with a wall-clock deadline. Returns
    /// [`LpOutcome::IterationLimit`] if the deadline passes mid-solve
    /// (checked every few dozen pivots).
    pub fn solve_until(&self, deadline: std::time::Instant) -> LpOutcome {
        Tableau::build(self).solve(Some(deadline))
    }

    /// Convenience: checks whether the constraint system is feasible at
    /// all (solves with a zero objective).
    pub fn is_feasible(&self) -> bool {
        let mut p = self.clone();
        p.objective = vec![0.0; self.num_vars];
        p.solve().is_optimal()
    }
}

const EPS: f64 = 1e-9;

/// Dense simplex tableau over shifted variables `x' = x - l >= 0`.
struct Tableau {
    /// `rows x cols` tableau; the last column is the RHS.
    t: Matrix,
    /// Basis variable per row.
    basis: Vec<usize>,
    /// Total structural + slack columns (artificials come after).
    num_structural: usize,
    num_slack: usize,
    num_artificial: usize,
    /// Shift (original lower bounds) to map the solution back.
    shift: Vec<f64>,
    /// Objective constant accumulated by the shift.
    obj_offset: f64,
    objective: Vec<f64>,
}

impl Tableau {
    fn build(p: &LpProblem) -> Self {
        let n = p.num_vars;
        // Shifted rows: every constraint becomes `a . x' <= b'` (or two
        // rows for equalities), plus an upper-bound row per variable with
        // a strictly positive range.
        struct Row {
            coeffs: Vec<f64>,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::new();
        let mut push = |coeffs: Vec<f64>, rhs: f64| rows.push(Row { coeffs, rhs });

        for c in &p.constraints {
            let shift_amount: f64 = c
                .coeffs
                .iter()
                .zip(p.lower.iter())
                .map(|(a, l)| a * l)
                .sum();
            let rhs = c.rhs - shift_amount;
            match c.relation {
                Relation::Le => push(c.coeffs.clone(), rhs),
                Relation::Ge => push(c.coeffs.iter().map(|a| -a).collect(), -rhs),
                Relation::Eq => {
                    push(c.coeffs.clone(), rhs);
                    push(c.coeffs.iter().map(|a| -a).collect(), -rhs);
                }
            }
        }
        for v in 0..n {
            let range = p.upper[v] - p.lower[v];
            let mut coeffs = vec![0.0; n];
            coeffs[v] = 1.0;
            push(coeffs, range);
        }

        let m = rows.len();
        // Decide which rows need artificials (negative RHS after slack).
        let mut needs_artificial = vec![false; m];
        let mut num_artificial = 0;
        for (i, row) in rows.iter().enumerate() {
            if row.rhs < 0.0 {
                needs_artificial[i] = true;
                num_artificial += 1;
            }
        }

        let cols = n + m + num_artificial + 1;
        let mut t = Matrix::zeros(m, cols);
        let mut basis = vec![0usize; m];
        let mut art_idx = n + m;
        for (i, row) in rows.iter().enumerate() {
            let flip = if needs_artificial[i] { -1.0 } else { 1.0 };
            for (j, a) in row.coeffs.iter().enumerate() {
                t.set(i, j, flip * a);
            }
            // Slack for this row.
            t.set(i, n + i, flip);
            t.set(i, cols - 1, flip * row.rhs);
            if needs_artificial[i] {
                t.set(i, art_idx, 1.0);
                basis[i] = art_idx;
                art_idx += 1;
            } else {
                basis[i] = n + i;
            }
        }

        let obj_offset: f64 = p
            .objective
            .iter()
            .zip(p.lower.iter())
            .map(|(c, l)| c * l)
            .sum();

        Tableau {
            t,
            basis,
            num_structural: n,
            num_slack: m,
            num_artificial,
            shift: p.lower.clone(),
            obj_offset,
            objective: p.objective.clone(),
        }
    }

    fn cols(&self) -> usize {
        self.t.cols()
    }

    fn rows(&self) -> usize {
        self.t.rows()
    }

    fn rhs(&self, row: usize) -> f64 {
        self.t.get(row, self.cols() - 1)
    }

    /// Runs simplex on the objective row `reduced`, pivoting with Bland's
    /// rule restricted to columns `< limit`. Returns `false` if the
    /// iteration budget (or the deadline) is exhausted.
    fn run_simplex(
        &mut self,
        reduced: &mut [f64],
        obj_val: &mut f64,
        limit: usize,
        deadline: Option<std::time::Instant>,
    ) -> bool {
        let max_iters = 50 * (self.rows() + limit) + 1000;
        for iter in 0..max_iters {
            if iter % 32 == 0 {
                if let Some(d) = deadline {
                    if std::time::Instant::now() >= d {
                        return false;
                    }
                }
            }
            // Bland's rule: entering variable = lowest index with
            // negative reduced cost.
            let entering = (0..limit).find(|&j| reduced[j] < -EPS);
            let Some(enter) = entering else {
                return true; // optimal
            };
            // Ratio test (Bland: lowest basis index on ties).
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.rows() {
                let a = self.t.get(i, enter);
                if a > EPS {
                    let ratio = self.rhs(i) / a;
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]))
                    {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(leave) = leave else {
                // Unbounded in this direction. With finite variable
                // bounds this can only happen through numerical trouble;
                // treat as converged to avoid spinning.
                return true;
            };
            self.pivot(leave, enter, reduced, obj_val);
        }
        false
    }

    fn pivot(&mut self, row: usize, col: usize, reduced: &mut [f64], obj_val: &mut f64) {
        let cols = self.cols();
        let pivot_val = self.t.get(row, col);
        debug_assert!(pivot_val.abs() > EPS, "pivot on (near) zero element");
        // Normalize pivot row.
        for j in 0..cols {
            let v = self.t.get(row, j) / pivot_val;
            self.t.set(row, j, v);
        }
        // Eliminate the column from other rows.
        for i in 0..self.rows() {
            if i == row {
                continue;
            }
            let factor = self.t.get(i, col);
            if factor.abs() <= EPS {
                continue;
            }
            for j in 0..cols {
                let v = self.t.get(i, j) - factor * self.t.get(row, j);
                self.t.set(i, j, v);
            }
        }
        // Update the reduced-cost row.
        let factor = reduced[col];
        if factor.abs() > EPS {
            for (j, r) in reduced.iter_mut().enumerate().take(cols - 1) {
                *r -= factor * self.t.get(row, j);
            }
            // `obj_val` stores z (not -z as a tableau row would), so the
            // elimination step adds factor * rhs.
            *obj_val += factor * self.rhs(row);
        }
        self.basis[row] = col;
    }

    fn reduced_costs(&self, cost: &[f64]) -> (Vec<f64>, f64) {
        // reduced_j = c_j - c_B . B^{-1} A_j, computed directly from the
        // current tableau: for basic rows, tableau already holds B^{-1} A.
        let cols = self.cols();
        let mut reduced = vec![0.0; cols - 1];
        reduced[..cost.len()].copy_from_slice(cost);
        let mut obj = 0.0;
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = if b < cost.len() { cost[b] } else { 0.0 };
            if cb == 0.0 {
                continue;
            }
            for (j, r) in reduced.iter_mut().enumerate() {
                *r -= cb * self.t.get(i, j);
            }
            obj += cb * self.rhs(i);
        }
        (reduced, obj)
    }

    fn solve(mut self, deadline: Option<std::time::Instant>) -> LpOutcome {
        let n = self.num_structural;
        let total_cols = self.cols() - 1;

        // Phase 1: minimize the sum of artificial variables.
        if self.num_artificial > 0 {
            let mut cost = vec![0.0; total_cols];
            for j in n + self.num_slack..total_cols {
                cost[j] = 1.0;
            }
            let (mut reduced, mut obj) = self.reduced_costs(&cost);
            if !self.run_simplex(&mut reduced, &mut obj, total_cols, deadline) {
                return LpOutcome::IterationLimit;
            }
            if obj > 1e-6 {
                return LpOutcome::Infeasible;
            }
            // Drive any remaining artificials out of the basis where
            // possible (degenerate rows can keep a zero-valued
            // artificial; pivot it out on any eligible column).
            for i in 0..self.rows() {
                if self.basis[i] >= n + self.num_slack {
                    if let Some(col) =
                        (0..n + self.num_slack).find(|&j| self.t.get(i, j).abs() > 1e-7)
                    {
                        let mut dummy = vec![0.0; self.cols() - 1];
                        let mut dv = 0.0;
                        self.pivot(i, col, &mut dummy, &mut dv);
                    }
                }
            }
        }

        // Phase 2: the real objective over structural + slack columns only
        // (artificial columns are excluded from pivoting).
        let mut cost = vec![0.0; total_cols];
        cost[..n].copy_from_slice(&self.objective);
        let (mut reduced, mut obj) = self.reduced_costs(&cost);
        if !self.run_simplex(&mut reduced, &mut obj, n + self.num_slack, deadline) {
            return LpOutcome::IterationLimit;
        }

        // Extract the solution.
        let mut x_shifted = vec![0.0; n];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < n {
                x_shifted[b] = self.rhs(i);
            }
        }
        let x: Vec<f64> = x_shifted
            .iter()
            .zip(self.shift.iter())
            .map(|(v, l)| v + l)
            .collect();
        let value = tensor::ops::dot(&self.objective, &x_shifted) + self.obj_offset;
        LpOutcome::Optimal { x, value }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn assert_optimal(outcome: &LpOutcome) -> (&Vec<f64>, f64) {
        match outcome {
            LpOutcome::Optimal { x, value } => (x, *value),
            other => panic!("expected optimal, got {other:?}"),
        }
    }

    #[test]
    fn unconstrained_box_minimum() {
        let mut p = LpProblem::new(2);
        p.set_bounds(0, -1.0, 2.0);
        p.set_bounds(1, -3.0, 5.0);
        p.set_objective(vec![1.0, -1.0]);
        let (x, v) = match p.solve() {
            LpOutcome::Optimal { x, value } => (x, value),
            o => panic!("{o:?}"),
        };
        assert!((x[0] + 1.0).abs() < 1e-9);
        assert!((x[1] - 5.0).abs() < 1e-9);
        assert!((v + 6.0).abs() < 1e-9);
    }

    #[test]
    fn classic_2d_lp() {
        // min -3x - 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y in [0,10]
        let mut p = LpProblem::new(2);
        p.set_bounds(0, 0.0, 10.0);
        p.set_bounds(1, 0.0, 10.0);
        p.set_objective(vec![-3.0, -5.0]);
        p.add_constraint(Constraint::le(vec![1.0, 0.0], 4.0));
        p.add_constraint(Constraint::le(vec![0.0, 2.0], 12.0));
        p.add_constraint(Constraint::le(vec![3.0, 2.0], 18.0));
        let out = p.solve();
        let (x, v) = assert_optimal(&out);
        assert!((x[0] - 2.0).abs() < 1e-8, "x = {x:?}");
        assert!((x[1] - 6.0).abs() < 1e-8);
        assert!((v + 36.0).abs() < 1e-8);
    }

    #[test]
    fn equality_constraint() {
        // min x + y  s.t.  x + y = 1,  x,y in [0,1]
        let mut p = LpProblem::new(2);
        p.set_objective(vec![1.0, 1.0]);
        p.add_constraint(Constraint::eq(vec![1.0, 1.0], 1.0));
        let out = p.solve();
        let (_, v) = assert_optimal(&out);
        assert!((v - 1.0).abs() < 1e-8);
    }

    #[test]
    fn ge_constraint_with_negative_bounds() {
        // min y  s.t.  y >= x, x in [-2, 2], y in [-5, 5]  => y = -2
        let mut p = LpProblem::new(2);
        p.set_bounds(0, -2.0, 2.0);
        p.set_bounds(1, -5.0, 5.0);
        p.set_objective(vec![0.0, 1.0]);
        p.add_constraint(Constraint::ge(vec![-1.0, 1.0], 0.0));
        let out = p.solve();
        let (x, v) = assert_optimal(&out);
        assert!((v + 2.0).abs() < 1e-8, "value {v} x {x:?}");
    }

    #[test]
    fn detects_infeasibility() {
        let mut p = LpProblem::new(1);
        p.set_bounds(0, 0.0, 1.0);
        p.add_constraint(Constraint::ge(vec![1.0], 2.0));
        assert!(matches!(p.solve(), LpOutcome::Infeasible));
        assert!(!p.is_feasible());
    }

    #[test]
    fn infeasible_equalities() {
        let mut p = LpProblem::new(2);
        p.set_bounds(0, -10.0, 10.0);
        p.set_bounds(1, -10.0, 10.0);
        p.add_constraint(Constraint::eq(vec![1.0, 1.0], 1.0));
        p.add_constraint(Constraint::eq(vec![1.0, 1.0], 2.0));
        assert!(matches!(p.solve(), LpOutcome::Infeasible));
    }

    #[test]
    fn feasible_system_reports_point_satisfying_constraints() {
        let mut p = LpProblem::new(3);
        for v in 0..3 {
            p.set_bounds(v, -1.0, 1.0);
        }
        p.add_constraint(Constraint::le(vec![1.0, 1.0, 1.0], 0.5));
        p.add_constraint(Constraint::ge(vec![1.0, -1.0, 0.0], -0.25));
        p.set_objective(vec![0.3, -0.2, 0.9]);
        let out = p.solve();
        let (x, _) = assert_optimal(&out);
        assert!(x.iter().all(|v| (-1.0 - 1e-7..=1.0 + 1e-7).contains(v)));
        assert!(x[0] + x[1] + x[2] <= 0.5 + 1e-7);
        assert!(x[0] - x[1] >= -0.25 - 1e-7);
    }

    #[test]
    fn degenerate_fixed_variable() {
        let mut p = LpProblem::new(2);
        p.set_bounds(0, 0.5, 0.5);
        p.set_bounds(1, 0.0, 1.0);
        p.set_objective(vec![1.0, 1.0]);
        let out = p.solve();
        let (x, v) = assert_optimal(&out);
        assert!((x[0] - 0.5).abs() < 1e-9);
        assert!((v - 0.5).abs() < 1e-9);
    }

    #[test]
    fn redundant_constraints_are_harmless() {
        let mut p = LpProblem::new(2);
        p.set_bounds(0, 0.0, 2.0);
        p.set_bounds(1, 0.0, 2.0);
        p.set_objective(vec![-1.0, -1.0]);
        // The same constraint three times plus a slack one.
        for _ in 0..3 {
            p.add_constraint(Constraint::le(vec![1.0, 1.0], 2.0));
        }
        p.add_constraint(Constraint::le(vec![1.0, 0.0], 100.0));
        let (x, v) = match p.solve() {
            LpOutcome::Optimal { x, value } => (x, value),
            o => panic!("{o:?}"),
        };
        assert!((v + 2.0).abs() < 1e-8);
        assert!((x[0] + x[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn all_variables_fixed() {
        let mut p = LpProblem::new(3);
        for v in 0..3 {
            p.set_bounds(v, 0.25, 0.25);
        }
        p.set_objective(vec![1.0, 2.0, 3.0]);
        p.add_constraint(Constraint::le(vec![1.0, 1.0, 1.0], 1.0));
        let (_, v) = match p.solve() {
            LpOutcome::Optimal { x, value } => (x, value),
            o => panic!("{o:?}"),
        };
        assert!((v - 1.5).abs() < 1e-9);
        // An infeasible constraint over fixed variables is detected.
        let mut q = p.clone();
        q.add_constraint(Constraint::ge(vec![1.0, 1.0, 1.0], 1.0));
        assert!(matches!(q.solve(), LpOutcome::Infeasible));
    }

    #[test]
    fn solve_until_expired_deadline_reports_limit() {
        let mut p = LpProblem::new(4);
        for v in 0..4 {
            p.set_bounds(v, -1.0, 1.0);
        }
        p.set_objective(vec![1.0, -1.0, 1.0, -1.0]);
        p.add_constraint(Constraint::le(vec![1.0, 1.0, 1.0, 1.0], 0.5));
        let past = std::time::Instant::now() - std::time::Duration::from_secs(1);
        assert!(matches!(p.solve_until(past), LpOutcome::IterationLimit));
    }

    #[test]
    fn equality_with_negative_rhs() {
        // Exercises the artificial-variable path: x + y = -1 with
        // negative-capable bounds.
        let mut p = LpProblem::new(2);
        p.set_bounds(0, -2.0, 0.0);
        p.set_bounds(1, -2.0, 0.0);
        p.set_objective(vec![1.0, 0.0]);
        p.add_constraint(Constraint::eq(vec![1.0, 1.0], -1.0));
        let (x, v) = match p.solve() {
            LpOutcome::Optimal { x, value } => (x, value),
            o => panic!("{o:?}"),
        };
        assert!((x[0] + x[1] + 1.0).abs() < 1e-8);
        assert!((v + 1.0).abs() < 1e-8, "min x0 should be -1, got {v}");
    }

    #[test]
    fn random_lps_optimum_beats_random_feasible_points() {
        let mut rng = StdRng::seed_from_u64(0);
        for trial in 0..20 {
            let n = rng.gen_range(2..5);
            let mut p = LpProblem::new(n);
            for v in 0..n {
                let lo = rng.gen_range(-2.0..0.0);
                let hi = rng.gen_range(0.0..2.0);
                p.set_bounds(v, lo, hi);
            }
            let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            p.set_objective(obj.clone());
            // A constraint through the box center keeps things feasible.
            let coeffs: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            p.add_constraint(Constraint::le(coeffs.clone(), 1.0));
            let out = p.solve();
            let (x, v) = assert_optimal(&out);
            // Constraint satisfied.
            assert!(tensor::ops::dot(&coeffs, x) <= 1.0 + 1e-6, "trial {trial}");
            // No sampled feasible point does better.
            for _ in 0..200 {
                let cand: Vec<f64> = (0..n)
                    .map(|i| {
                        let (l, u) = (p.lower[i], p.upper[i]);
                        rng.gen_range(l..=u)
                    })
                    .collect();
                if tensor::ops::dot(&coeffs, &cand) <= 1.0 {
                    let cv = tensor::ops::dot(&obj, &cand);
                    assert!(
                        cv >= v - 1e-6,
                        "sampled {cv} beats optimum {v} (trial {trial})"
                    );
                }
            }
        }
    }
}
