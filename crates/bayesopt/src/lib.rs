//! Bayesian optimization with a Gaussian-process surrogate.
//!
//! Replaces the BayesOpt library (ref. 35 of the paper) used by the original tool. Following
//! the paper (§4.2), the surrogate model is a Gaussian process with an RBF
//! kernel and the acquisition function is expected improvement; the
//! optimizer maximizes a black-box function over a box by repeatedly
//! sampling the acquisition-optimal point.
//!
//! # Examples
//!
//! ```
//! use bayesopt::{BayesOpt, BayesOptConfig};
//!
//! // Maximize a smooth 1-D function on [0, 4].
//! let f = |x: &[f64]| -(x[0] - 2.7f64).powi(2);
//! let config = BayesOptConfig { iterations: 25, ..BayesOptConfig::default() };
//! let result = BayesOpt::new(vec![(0.0, 4.0)], config, 42).run(f);
//! assert!((result.best_input[0] - 2.7).abs() < 0.3);
//! ```

// Numeric kernels in this crate co-index several arrays at once; index
// loops are clearer than zipped iterator chains there.
#![allow(clippy::needless_range_loop)]

mod gp;

pub use gp::{GaussianProcess, GpConfig};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Bayesian-optimization loop.
#[derive(Debug, Clone)]
pub struct BayesOptConfig {
    /// Number of acquisition-driven evaluations after the initial design.
    pub iterations: usize,
    /// Number of random points in the initial (Latin hypercube) design.
    pub initial_design: usize,
    /// Number of random candidates scored by the acquisition function per
    /// iteration.
    pub acquisition_candidates: usize,
    /// Exploration bonus ξ in the expected-improvement formula.
    pub xi: f64,
    /// Gaussian-process hyper-parameters.
    pub gp: GpConfig,
}

impl Default for BayesOptConfig {
    fn default() -> Self {
        BayesOptConfig {
            iterations: 30,
            initial_design: 8,
            acquisition_candidates: 256,
            xi: 0.01,
            gp: GpConfig::default(),
        }
    }
}

/// Result of a Bayesian-optimization run.
#[derive(Debug, Clone)]
pub struct BayesOptResult {
    /// The input achieving the best (maximal) observed value.
    pub best_input: Vec<f64>,
    /// The best observed value.
    pub best_value: f64,
    /// All evaluated inputs, in order.
    pub history: Vec<(Vec<f64>, f64)>,
}

/// A Bayesian optimizer maximizing a black-box function over a box.
#[derive(Debug, Clone)]
pub struct BayesOpt {
    bounds: Vec<(f64, f64)>,
    config: BayesOptConfig,
    seed: u64,
}

impl BayesOpt {
    /// Creates an optimizer over the given per-dimension bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or any interval is inverted.
    pub fn new(bounds: Vec<(f64, f64)>, config: BayesOptConfig, seed: u64) -> Self {
        assert!(!bounds.is_empty(), "need at least one dimension");
        for (lo, hi) in &bounds {
            assert!(lo <= hi, "inverted bound [{lo}, {hi}]");
        }
        BayesOpt {
            bounds,
            config,
            seed,
        }
    }

    /// Runs the optimization loop, maximizing `f`.
    pub fn run(&self, mut f: impl FnMut(&[f64]) -> f64) -> BayesOptResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dim = self.bounds.len();
        let mut history: Vec<(Vec<f64>, f64)> = Vec::new();

        // Initial design: stratified (Latin hypercube style) samples.
        let n0 = self.config.initial_design.max(2);
        let mut strata: Vec<Vec<usize>> = (0..dim)
            .map(|_| {
                let mut idx: Vec<usize> = (0..n0).collect();
                for i in (1..idx.len()).rev() {
                    idx.swap(i, rng.gen_range(0..=i));
                }
                idx
            })
            .collect();
        for s in 0..n0 {
            let x: Vec<f64> = (0..dim)
                .map(|d| {
                    let (lo, hi) = self.bounds[d];
                    let cell = strata[d][s] as f64;
                    let u: f64 = rng.gen_range(0.0..1.0);
                    lo + (hi - lo) * ((cell + u) / n0 as f64)
                })
                .collect();
            let y = f(&x);
            history.push((x, y));
        }
        strata.clear();

        for _ in 0..self.config.iterations {
            let xs: Vec<Vec<f64>> = history.iter().map(|(x, _)| x.clone()).collect();
            let ys: Vec<f64> = history.iter().map(|(_, y)| *y).collect();
            let best_y = ys.iter().fold(f64::NEG_INFINITY, |m, v| m.max(*v));

            let candidate = match GaussianProcess::fit(&xs, &ys, &self.config.gp) {
                Ok(gp) => {
                    // Maximize expected improvement over random candidates.
                    let mut best_ei = f64::NEG_INFINITY;
                    let mut best_x: Option<Vec<f64>> = None;
                    for _ in 0..self.config.acquisition_candidates {
                        let x = self.sample_point(&mut rng);
                        let (mean, var) = gp.predict(&x);
                        let ei = expected_improvement(mean, var, best_y, self.config.xi);
                        if ei > best_ei {
                            best_ei = ei;
                            best_x = Some(x);
                        }
                    }
                    best_x.unwrap_or_else(|| self.sample_point(&mut rng))
                }
                // Degenerate kernel matrix: fall back to random search.
                Err(_) => self.sample_point(&mut rng),
            };
            let y = f(&candidate);
            history.push((candidate, y));
        }

        let (best_input, best_value) = history
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(x, y)| (x.clone(), *y))
            .expect("history is non-empty");
        BayesOptResult {
            best_input,
            best_value,
            history,
        }
    }

    fn sample_point(&self, rng: &mut StdRng) -> Vec<f64> {
        self.bounds
            .iter()
            .map(|(lo, hi)| {
                if lo == hi {
                    *lo
                } else {
                    rng.gen_range(*lo..*hi)
                }
            })
            .collect()
    }
}

/// The expected-improvement acquisition value for a candidate with
/// posterior `mean` and `variance`, given the incumbent best value.
pub fn expected_improvement(mean: f64, variance: f64, best: f64, xi: f64) -> f64 {
    let sigma = variance.max(0.0).sqrt();
    if sigma < 1e-12 {
        return (mean - best - xi).max(0.0);
    }
    let z = (mean - best - xi) / sigma;
    (mean - best - xi) * standard_normal_cdf(z) + sigma * standard_normal_pdf(z)
}

fn standard_normal_pdf(z: f64) -> f64 {
    (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max absolute error ~1.5e-7, ample for acquisition ranking).
fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
    }

    #[test]
    fn cdf_symmetry() {
        for z in [-2.0, -0.5, 0.0, 0.5, 2.0] {
            let a = standard_normal_cdf(z);
            let b = standard_normal_cdf(-z);
            assert!((a + b - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn ei_is_nonnegative_and_monotone_in_mean() {
        let e1 = expected_improvement(0.0, 1.0, 0.5, 0.0);
        let e2 = expected_improvement(1.0, 1.0, 0.5, 0.0);
        assert!(e1 >= 0.0);
        assert!(e2 > e1);
    }

    #[test]
    fn ei_zero_variance_clamps() {
        assert_eq!(expected_improvement(0.0, 0.0, 1.0, 0.0), 0.0);
        assert!((expected_improvement(2.0, 0.0, 1.0, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn optimizes_quadratic_1d() {
        let f = |x: &[f64]| -(x[0] - 1.5f64).powi(2);
        let config = BayesOptConfig {
            iterations: 30,
            ..BayesOptConfig::default()
        };
        let result = BayesOpt::new(vec![(0.0, 4.0)], config, 0).run(f);
        assert!(
            (result.best_input[0] - 1.5).abs() < 0.3,
            "found {:?}",
            result.best_input
        );
    }

    #[test]
    fn optimizes_2d_function() {
        let f = |x: &[f64]| -((x[0] - 0.3f64).powi(2) + (x[1] + 0.6f64).powi(2));
        let config = BayesOptConfig {
            iterations: 40,
            ..BayesOptConfig::default()
        };
        let result = BayesOpt::new(vec![(-1.0, 1.0), (-1.0, 1.0)], config, 1).run(f);
        assert!(result.best_value > -0.15, "best {}", result.best_value);
    }

    #[test]
    fn beats_pure_initial_design() {
        // With iterations the optimizer should do at least as well as its
        // own initial design.
        let f = |x: &[f64]| (-(x[0] * 3.0).powi(2)).exp();
        let config = BayesOptConfig {
            iterations: 15,
            initial_design: 5,
            ..BayesOptConfig::default()
        };
        let result = BayesOpt::new(vec![(-2.0, 2.0)], config, 3).run(f);
        let design_best = result.history[..5]
            .iter()
            .map(|(_, y)| *y)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(result.best_value >= design_best);
    }

    #[test]
    fn run_is_deterministic() {
        let f = |x: &[f64]| x.iter().sum::<f64>().sin();
        let a = BayesOpt::new(vec![(0.0, 6.0)], BayesOptConfig::default(), 5).run(f);
        let b = BayesOpt::new(vec![(0.0, 6.0)], BayesOptConfig::default(), 5).run(f);
        assert_eq!(a.best_input, b.best_input);
        assert_eq!(a.best_value, b.best_value);
    }

    #[test]
    fn degenerate_dimension_is_held_constant() {
        let f = |x: &[f64]| -x[0].powi(2);
        let config = BayesOptConfig {
            iterations: 5,
            ..BayesOptConfig::default()
        };
        let result = BayesOpt::new(vec![(0.5, 0.5)], config, 2).run(f);
        assert_eq!(result.best_input, vec![0.5]);
    }
}
