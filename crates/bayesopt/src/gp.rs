//! Gaussian-process regression with an RBF kernel.

use tensor::linalg::Cholesky;
use tensor::{LinalgError, Matrix};

/// Hyper-parameters of the Gaussian-process surrogate.
#[derive(Debug, Clone)]
pub struct GpConfig {
    /// RBF kernel length scale.
    pub length_scale: f64,
    /// Kernel signal variance.
    pub signal_variance: f64,
    /// Observation noise variance (also regularizes the kernel matrix).
    pub noise: f64,
}

impl Default for GpConfig {
    fn default() -> Self {
        GpConfig {
            length_scale: 1.0,
            signal_variance: 1.0,
            noise: 1e-6,
        }
    }
}

/// A fitted Gaussian-process posterior over observations `(X, y)`.
///
/// The prior mean is the empirical mean of the observations; the kernel is
/// the squared-exponential `k(a, b) = σ² exp(-|a-b|² / (2ℓ²))`.
///
/// # Examples
///
/// ```
/// use bayesopt::{GaussianProcess, GpConfig};
///
/// let xs = vec![vec![0.0], vec![1.0], vec![2.0]];
/// let ys = vec![0.0, 1.0, 0.0];
/// let gp = GaussianProcess::fit(&xs, &ys, &GpConfig::default())?;
/// let (mean, var) = gp.predict(&[1.0]);
/// assert!((mean - 1.0).abs() < 1e-3); // interpolates observations
/// assert!(var < 1e-3);
/// # Ok::<(), tensor::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    xs: Vec<Vec<f64>>,
    mean_y: f64,
    alpha: Vec<f64>,
    chol: Cholesky,
    config: GpConfig,
}

impl GaussianProcess {
    /// Fits the posterior to observations.
    ///
    /// # Errors
    ///
    /// Returns a [`LinalgError`] if the kernel matrix is numerically
    /// singular (e.g. duplicate points with zero noise).
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` lengths differ or `xs` is empty.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], config: &GpConfig) -> Result<Self, LinalgError> {
        assert_eq!(xs.len(), ys.len(), "xs/ys length mismatch");
        assert!(!xs.is_empty(), "need at least one observation");
        let n = xs.len();
        let mean_y = ys.iter().sum::<f64>() / n as f64;
        let mut k = Matrix::from_fn(n, n, |i, j| rbf(&xs[i], &xs[j], config));
        for i in 0..n {
            k.set(i, i, k.get(i, i) + config.noise.max(1e-12));
        }
        let chol = Cholesky::factor(&k)?;
        let centered: Vec<f64> = ys.iter().map(|y| y - mean_y).collect();
        let alpha = chol.solve(&centered);
        Ok(GaussianProcess {
            xs: xs.to_vec(),
            mean_y,
            alpha,
            chol,
            config: config.clone(),
        })
    }

    /// Posterior mean and variance at a query point.
    ///
    /// # Panics
    ///
    /// Panics if `x` has a different dimension than the training inputs.
    pub fn predict(&self, x: &[f64]) -> (f64, f64) {
        let kstar: Vec<f64> = self.xs.iter().map(|xi| rbf(xi, x, &self.config)).collect();
        let mean = self.mean_y + tensor::ops::dot(&kstar, &self.alpha);
        let v = self.chol.solve_lower(&kstar);
        let variance = self.config.signal_variance - tensor::ops::dot(&v, &v);
        (mean, variance.max(0.0))
    }

    /// Log marginal likelihood of the observations under the fitted
    /// hyper-parameters: `-0.5 (y-m)ᵀ K⁻¹ (y-m) - 0.5 log|K| - n/2 log 2π`.
    ///
    /// Used by [`GaussianProcess::fit_auto`] to select a length scale.
    pub fn log_marginal_likelihood(&self, ys: &[f64]) -> f64 {
        let n = self.xs.len() as f64;
        let centered: Vec<f64> = ys.iter().map(|y| y - self.mean_y).collect();
        let fit_term = -0.5 * tensor::ops::dot(&centered, &self.alpha);
        let det_term = -0.5 * self.chol.log_det();
        let norm_term = -0.5 * n * (2.0 * std::f64::consts::PI).ln();
        fit_term + det_term + norm_term
    }

    /// Fits a posterior with the length scale chosen from `candidates`
    /// by maximum log marginal likelihood (type-II maximum likelihood).
    ///
    /// # Errors
    ///
    /// Returns the last factorization error if every candidate fails.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or `xs`/`ys` mismatch.
    pub fn fit_auto(
        xs: &[Vec<f64>],
        ys: &[f64],
        base: &GpConfig,
        candidates: &[f64],
    ) -> Result<Self, LinalgError> {
        assert!(!candidates.is_empty(), "need at least one candidate scale");
        let mut best: Option<(f64, GaussianProcess)> = None;
        let mut last_err = LinalgError::NotPositiveDefinite;
        for &scale in candidates {
            let config = GpConfig {
                length_scale: scale,
                ..base.clone()
            };
            match GaussianProcess::fit(xs, ys, &config) {
                Ok(gp) => {
                    let lml = gp.log_marginal_likelihood(ys);
                    if best.as_ref().is_none_or(|(b, _)| lml > *b) {
                        best = Some((lml, gp));
                    }
                }
                Err(e) => last_err = e,
            }
        }
        best.map(|(_, gp)| gp).ok_or(last_err)
    }

    /// Number of observations the posterior conditions on.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the posterior has no observations (never true for a fitted
    /// process).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }
}

fn rbf(a: &[f64], b: &[f64], config: &GpConfig) -> f64 {
    assert_eq!(a.len(), b.len(), "kernel input dimension mismatch");
    let d2: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
    config.signal_variance * (-0.5 * d2 / (config.length_scale * config.length_scale)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn interpolates_observations() {
        let xs = vec![vec![0.0], vec![0.5], vec![1.0]];
        let ys = vec![1.0, -1.0, 2.0];
        let gp = GaussianProcess::fit(&xs, &ys, &GpConfig::default()).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            let (mean, var) = gp.predict(x);
            assert!((mean - y).abs() < 1e-3, "mean {mean} vs {y}");
            assert!(var < 1e-3, "variance {var} should collapse at data");
        }
    }

    #[test]
    fn variance_grows_away_from_data() {
        let xs = vec![vec![0.0]];
        let ys = vec![0.0];
        let gp = GaussianProcess::fit(&xs, &ys, &GpConfig::default()).unwrap();
        let (_, v_near) = gp.predict(&[0.1]);
        let (_, v_far) = gp.predict(&[3.0]);
        assert!(v_far > v_near);
    }

    #[test]
    fn far_prediction_reverts_to_mean() {
        let xs = vec![vec![0.0], vec![1.0]];
        let ys = vec![2.0, 4.0];
        let gp = GaussianProcess::fit(&xs, &ys, &GpConfig::default()).unwrap();
        let (mean, _) = gp.predict(&[100.0]);
        assert!(
            (mean - 3.0).abs() < 1e-6,
            "should revert to mean 3, got {mean}"
        );
    }

    #[test]
    fn duplicate_points_need_noise() {
        let xs = vec![vec![0.0], vec![0.0]];
        let ys = vec![1.0, 1.0];
        let mut config = GpConfig {
            noise: 0.0,
            ..GpConfig::default()
        };
        // Noise floor (1e-12) still allows the factorization to succeed
        // or fail gracefully; with reasonable noise it must succeed.
        config.noise = 1e-4;
        assert!(GaussianProcess::fit(&xs, &ys, &config).is_ok());
    }

    #[test]
    fn marginal_likelihood_prefers_matching_scale() {
        // Data generated from a slowly varying function: a long length
        // scale must have higher marginal likelihood than a tiny one.
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 * 0.5]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.3).sin()).collect();
        let config = GpConfig {
            noise: 1e-4,
            ..GpConfig::default()
        };
        let long = GaussianProcess::fit(
            &xs,
            &ys,
            &GpConfig {
                length_scale: 2.0,
                ..config.clone()
            },
        )
        .unwrap();
        let short = GaussianProcess::fit(
            &xs,
            &ys,
            &GpConfig {
                length_scale: 0.05,
                ..config.clone()
            },
        )
        .unwrap();
        assert!(
            long.log_marginal_likelihood(&ys) > short.log_marginal_likelihood(&ys),
            "long scale should fit smooth data better"
        );
    }

    #[test]
    fn fit_auto_selects_a_reasonable_scale() {
        let xs: Vec<Vec<f64>> = (0..12).map(|i| vec![i as f64 * 0.5]).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 0.3).sin()).collect();
        let base = GpConfig {
            noise: 1e-4,
            ..GpConfig::default()
        };
        let auto = GaussianProcess::fit_auto(&xs, &ys, &base, &[0.05, 0.5, 2.0]).unwrap();
        // The auto fit must interpolate at least as well as the worst
        // candidate at an interior point.
        let (mean, _) = auto.predict(&[1.25]);
        let truth = (1.25f64 * 0.3).sin();
        assert!(
            (mean - truth).abs() < 0.05,
            "auto fit mean {mean} vs {truth}"
        );
    }

    #[test]
    #[should_panic(expected = "candidate")]
    fn fit_auto_empty_candidates_panics() {
        let _ = GaussianProcess::fit_auto(&[vec![0.0]], &[0.0], &GpConfig::default(), &[]);
    }

    proptest! {
        /// Posterior variance is bounded by the prior signal variance.
        #[test]
        fn variance_bounded_by_prior(
            pts in proptest::collection::vec(-3.0f64..3.0, 2..6),
            q in -3.0f64..3.0,
        ) {
            let xs: Vec<Vec<f64>> = pts.iter().map(|p| vec![*p]).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.sin()).collect();
            let config = GpConfig { noise: 1e-4, ..GpConfig::default() };
            if let Ok(gp) = GaussianProcess::fit(&xs, &ys, &config) {
                let (_, var) = gp.predict(&[q]);
                prop_assert!(var <= config.signal_variance + 1e-9);
                prop_assert!(var >= 0.0);
            }
        }
    }
}
