//! The `charon-cli` binary. All logic lives in the `cli` library crate so
//! it can be unit-tested; see [`cli::run`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    let code = cli::run(&argv, &mut stdout);
    std::process::exit(code.code());
}
