//! Implementation of the `charon-cli` command-line tool.
//!
//! The binary is a thin wrapper over [`run`], which parses an argument
//! vector and executes one of the subcommands:
//!
//! ```text
//! charon-cli verify  --network NET (--property PROP | --resume CKPT) [--timeout-ms N]
//!                    [--delta D] [--policy FILE] [--parallel N] [--checkpoint FILE]
//!                    [--no-cex] [--stats] [--report] [--trace-out FILE]
//!                    [--cert-out FILE]
//! charon-cli audit   --network NET --cert FILE
//! charon-cli attack  --network NET --property PROP [--restarts N] [--seed N]
//! charon-cli train   [--seed N] [--time-limit-ms N] --out FILE
//! charon-cli info    --network NET
//! charon-cli example --out-network NET --out-property PROP
//! charon-cli prop    --zoo NAME --image N --tau T --out-network NET --out-property PROP
//! charon-cli certify --zoo NAME --eps E [--points N] [--timeout-ms N]
//! charon-cli trace   --in FILE
//! charon-cli serve   --addr ADDR [--workers N] [--queue N] [--cache N]
//!                    [--shed-target-ms N] [--shed-interval-ms N]
//!                    [--reply-margin-ms N] [--journal FILE | --no-journal]
//! charon-cli serve   --addr ADDR --coordinator --nodes ADDR,ADDR[,...]
//!                    [--shards N] [--conns-per-node N] [--retry-budget N]
//!                    [--node-grace-ms N] [--breaker-threshold N]
//!                    [--breaker-cooldown-ms N] [--journal FILE | --no-journal]
//! charon-cli node    --addr ADDR [--workers N] [--reply-margin-ms N]
//!                    [--journal FILE]
//! charon-cli submit  --addr ADDR (--network NET --property PROP | --query ID
//!                    | --stats | --drain | --ping) [--id N] [--retries N]
//!                    [--priority N] [--deadline-ms N] [--timeout-ms N]
//!                    [--delta D] [--restarts N] [--seed N] [--no-cex] [--checkpoint FILE]
//!                    [--cert-out FILE]
//! ```
//!
//! Networks use the `nn::serialize` plain-text format and properties the
//! `charon-prop` format (see [`charon::RobustnessProperty::from_text`]).
//! Exit codes from `verify` and `submit`: 0 = verified, 1 = refuted,
//! 2 = resource limit, 64 = usage error, 65 = unreadable/malformed input
//! data (`EX_DATAERR`), 69 = daemon unavailable (`EX_UNAVAILABLE`:
//! connection refused, queue full, draining, or the retry budget ran
//! out on such a transient condition), 70 = internal engine failure
//! (`EX_SOFTWARE`), including a `poisoned` quarantine verdict.
//!
//! `verify --cert-out FILE` records a proof certificate (`charon-cert`
//! format, see the [`cert`] crate) for a decisive verdict: the full
//! region split tree with per-leaf domains and margins for `verified`,
//! or the concrete witness input for `refuted`. `audit` independently
//! re-checks such a certificate against the network using
//! directed-rounding arithmetic that shares no code with the search.
//! Its exit codes: 0 = certificate checks out (for a verified *or* a
//! refuted claim), 1 = certificate rejected (tampered, unsound, or for
//! a different network — the typed reason is printed), 65 = the
//! certificate or network file cannot be read, 64 = usage error.
//!
//! `serve` runs the [`server`] daemon in the foreground until a client
//! drains it; `submit` is the matching one-shot client. An address is
//! either `unix:/path/to.sock` (or a bare path) or `tcp:host:port`.
//!
//! The daemon is crash-only: on a Unix-socket address it journals every
//! accepted job to `<socket>.wal` by default (override with `--journal
//! FILE`, opt out with `--no-journal`; TCP daemons journal only when
//! `--journal` is given) and replays unfinished jobs after a restart.
//! `submit` picks a fresh job id per invocation unless `--id` pins one,
//! submits with the idempotent `ack` handshake, and retries transient
//! failures (connection refused, `busy` refusals, draining, journal
//! write errors) up to `--retries N` (default 3) times with capped
//! exponential backoff — waiting at least the server's `retry_after_ms`
//! hint, and stopping early once `--deadline-ms` is spent — before
//! giving up with exit code 69. A job that
//! repeatedly kills workers comes back as a `poisoned` verdict carrying
//! the panic diagnostic (exit code 70). `submit --query ID` asks a
//! daemon for the stored outcome of a previously submitted job.
//!
//! Interrupted `verify` runs can persist their worklist with
//! `--checkpoint FILE` and continue later with `--resume FILE`.
//!
//! `serve --coordinator` runs the multi-node tier (see
//! `docs/PROTOCOL.md` and `docs/OPERATIONS.md`): each accepted job's
//! input region is split into shards dispatched across the `--nodes`
//! pool, shard verdicts merge with record-and-stop semantics, dead
//! nodes are detected by read deadline and their shards re-dispatched
//! within `--retry-budget`, beyond which the shard is quarantined and
//! the job delivered as `poisoned`. `node` starts a shard-worker
//! daemon (a plain daemon that also answers `shard` requests). Each
//! node carries a circuit breaker: `--breaker-threshold` consecutive
//! dispatch failures route shards around it until a half-open probe
//! (after `--breaker-cooldown-ms`) finds it healthy again.
//!
//! Overload: `serve --shed-target-ms N` arms the sojourn-time shed
//! controller — once queue latency stays above the target for
//! `--shed-interval-ms`, new low-priority submissions are refused with
//! `busy` + `retry_after_ms` until latency recovers. Jobs carrying
//! `--deadline-ms` are answered `deadline_expired` without touching a
//! worker once the deadline is spent, and workers clamp the verification
//! budget to the remaining deadline minus `--reply-margin-ms`.
//!
//! Observability: `verify --report` prints a per-phase run report (see
//! [`charon::RunReport`]), `verify --trace-out FILE` streams one JSON
//! event per line (see [`charon::telemetry`]), and `trace --in FILE`
//! validates and summarizes such a trace file.

use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use charon::policy::LinearPolicy;
use charon::{
    Checkpoint, RobustnessProperty, Verdict, Verifier, VerifierConfig, VerifyError, VerifyRun,
};

/// Exit status of a CLI invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitCode {
    /// Verified / success.
    Success,
    /// Property refuted.
    Refuted,
    /// Budget exhausted.
    ResourceLimit,
    /// Bad usage (unknown flags, missing arguments).
    UsageError,
    /// Input data could not be loaded or is malformed (`EX_DATAERR`).
    DataError,
    /// The daemon could not take the job: connection refused, queue
    /// full, or draining (`EX_UNAVAILABLE`).
    Unavailable,
    /// The verification engine itself failed (`EX_SOFTWARE`).
    EngineError,
}

impl ExitCode {
    /// Numeric process exit code.
    pub fn code(self) -> i32 {
        match self {
            ExitCode::Success => 0,
            ExitCode::Refuted => 1,
            ExitCode::ResourceLimit => 2,
            ExitCode::UsageError => 64,
            ExitCode::DataError => 65,
            ExitCode::Unavailable => 69,
            ExitCode::EngineError => 70,
        }
    }
}

/// A classified CLI failure, mapped to a distinct exit code so scripts
/// can tell "you called it wrong" from "your file is broken" from "the
/// tool is broken".
#[derive(Debug, Clone, PartialEq, Eq)]
enum CliError {
    /// Bad invocation: unknown command, missing flag, unparsable value.
    Usage(String),
    /// Unreadable or malformed input data (network, property, policy,
    /// checkpoint files).
    Data(String),
    /// The daemon refused or cannot be reached (connect failure, queue
    /// full, draining).
    Unavailable(String),
    /// Internal engine failure (worker panic, numeric poisoning).
    Engine(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<VerifyError> for CliError {
    fn from(e: VerifyError) -> Self {
        match e {
            // A structurally unusable model is a data problem, not an
            // engine bug.
            VerifyError::MalformedModel { .. } => CliError::Data(e.to_string()),
            _ => CliError::Engine(e.to_string()),
        }
    }
}

/// Parsed command-line flags: `--key value` pairs plus the subcommand.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses an argument vector (excluding the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage message if no subcommand is present or a `--flag`
    /// is missing its value.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut iter = argv.iter();
        let command = iter.next().ok_or_else(usage)?.clone();
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        while let Some(arg) = iter.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!(
                    "unexpected positional argument {arg:?}\n{}",
                    usage()
                ));
            };
            // Boolean switches take no value.
            if matches!(
                name,
                "no-cex" | "help" | "stats" | "report" | "drain" | "ping" | "no-journal"
                    | "coordinator"
            ) {
                switches.push(name.to_string());
                continue;
            }
            let value = iter
                .next()
                .ok_or_else(|| format!("flag --{name} needs a value\n{}", usage()))?;
            flags.insert(name.to_string(), value.clone());
        }
        Ok(Args {
            command,
            flags,
            switches,
        })
    }

    /// The value of `--name`, if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// The value of a required flag.
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the missing flag.
    pub fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required flag --{name}\n{}", usage()))
    }

    /// Whether a boolean switch was passed.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// Parses a numeric flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not parse.
    pub fn get_u64(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name} expects an integer, got {v:?}")),
        }
    }

    /// Parses a float flag with a default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not parse.
    pub fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name} expects a number, got {v:?}")),
        }
    }
}

fn usage() -> String {
    "usage:\n  charon-cli verify  --network NET (--property PROP | --resume CKPT) [--timeout-ms N] [--delta D] [--policy FILE] [--parallel N] [--checkpoint FILE] [--no-cex] [--stats] [--report] [--trace-out FILE] [--cert-out FILE]\n  charon-cli audit   --network NET --cert FILE\n  charon-cli attack  --network NET --property PROP [--restarts N] [--seed N]\n  charon-cli train   [--seed N] [--time-limit-ms N] --out FILE\n  charon-cli info    --network NET\n  charon-cli example --out-network NET --out-property PROP\n  charon-cli prop    --zoo NAME --image N --tau T --out-network NET --out-property PROP\n  charon-cli certify --zoo NAME --eps E [--points N] [--timeout-ms N]\n  charon-cli trace   --in FILE\n  charon-cli serve   --addr ADDR [--workers N] [--queue N] [--cache N] [--shed-target-ms N] [--shed-interval-ms N] [--reply-margin-ms N] [--journal FILE | --no-journal] [--fault-kill-job ID] [--fault-worker-kill ORD]\n  charon-cli serve   --addr ADDR --coordinator --nodes ADDR,ADDR[,...] [--shards N] [--conns-per-node N] [--retry-budget N] [--node-grace-ms N] [--breaker-threshold N] [--breaker-cooldown-ms N] [--journal FILE | --no-journal] [--fault-node-kill ORD] [--fault-shard-drop ORD]\n  charon-cli node    --addr ADDR [--workers N] [--reply-margin-ms N] [--journal FILE] [--fault-shard-stall ORD --fault-shard-stall-ms MS]\n  charon-cli submit  --addr ADDR (--network NET --property PROP | --query ID | --stats | --drain | --ping) [--id N] [--retries N] [--priority N] [--deadline-ms N] [--timeout-ms N] [--delta D] [--restarts N] [--seed N] [--no-cex] [--checkpoint FILE] [--cert-out FILE]\n\nserve journals accepted jobs to <socket>.wal on Unix addresses unless --no-journal; --journal FILE overrides the path (and is required for durability on tcp: addresses). --fault-kill-job / --fault-worker-kill schedule deterministic worker panics for chaos testing only.\nserve --coordinator shards each job's input region across the listed nodes and merges shard verdicts; a node is a daemon started with `charon-cli node` (journal off by default: shards are the coordinator's to re-dispatch). --breaker-threshold consecutive dispatch failures trip a node's circuit breaker and route shards around it until a half-open probe after --breaker-cooldown-ms succeeds. --fault-node-kill / --fault-shard-drop / --fault-shard-stall schedule deterministic cluster faults for chaos testing only.\nserve --shed-target-ms arms adaptive load shedding: sustained queue latency above the target refuses new low-priority submissions with `busy` + retry_after_ms. submit --deadline-ms propagates an end-to-end deadline: expired jobs are answered deadline_expired without running, and workers clamp their budget to the remaining deadline minus --reply-margin-ms.\nsubmit retries transient failures (connect refused, busy, draining, journal errors) --retries times with capped exponential backoff, honoring the server's retry_after_ms hint and stopping once --deadline-ms is spent; exit 69 = retryable/unavailable, 70 = engine failure or poisoned job.\nverify --cert-out records a proof certificate for a decisive verdict (submit --cert-out asks the daemon to do the same over the wire); audit independently re-checks one with directed rounding (exit 0 = certificate ok, 1 = rejected, 65 = unreadable).".to_string()
}

/// Executes a CLI invocation, writing human-readable output to `out`.
pub fn run(argv: &[String], out: &mut impl std::io::Write) -> ExitCode {
    match run_inner(argv, out) {
        Ok(code) => code,
        Err(e) => {
            let (msg, code) = match e {
                CliError::Usage(msg) => (msg, ExitCode::UsageError),
                CliError::Data(msg) => (msg, ExitCode::DataError),
                CliError::Unavailable(msg) => (msg, ExitCode::Unavailable),
                CliError::Engine(msg) => (msg, ExitCode::EngineError),
            };
            let _ = writeln!(out, "error: {msg}");
            code
        }
    }
}

fn run_inner(argv: &[String], out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    let args = Args::parse(argv)?;
    if args.switch("help") {
        writeln!(out, "{}", usage()).map_err(|e| e.to_string())?;
        return Ok(ExitCode::Success);
    }
    match args.command.as_str() {
        "verify" => cmd_verify(&args, out),
        "audit" => cmd_audit(&args, out),
        "attack" => cmd_attack(&args, out),
        "train" => cmd_train(&args, out),
        "info" => cmd_info(&args, out),
        "example" => cmd_example(&args, out),
        "prop" => cmd_prop(&args, out),
        "certify" => cmd_certify(&args, out),
        "trace" => cmd_trace(&args, out),
        "serve" => cmd_serve(&args, out),
        "node" => cmd_node(&args, out),
        "submit" => cmd_submit(&args, out),
        other => Err(CliError::Usage(format!(
            "unknown command {other:?}\n{}",
            usage()
        ))),
    }
}

fn load_network(path: &str) -> Result<nn::Network, CliError> {
    nn::serialize::load(Path::new(path)).map_err(|e| CliError::Data(format!("cannot load network: {e}")))
}

fn load_property(path: &str) -> Result<RobustnessProperty, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Data(format!("cannot read {path}: {e}")))?;
    RobustnessProperty::from_text(&text)
        .map_err(|e| CliError::Data(format!("cannot load property: {e}")))
}

fn cmd_verify(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    if args.get("resume").is_some() && args.get("property").is_some() {
        return Err(CliError::Usage(format!(
            "--resume and --property are mutually exclusive; a checkpoint already fixes the property\n{}",
            usage()
        )));
    }
    let net = load_network(args.require("network")?)?;
    let mut config = VerifierConfig {
        timeout: Duration::from_millis(args.get_u64("timeout-ms", 60_000)?),
        delta: args.get_f64("delta", 1e-9)?,
        counterexample_search: !args.switch("no-cex"),
        certificates: args.get("cert-out").is_some(),
        ..VerifierConfig::default()
    };
    config.seed = args.get_u64("seed", 0)?;

    let policy: Arc<dyn charon::policy::Policy> = match args.get("policy") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Data(format!("cannot read {path}: {e}")))?;
            Arc::new(LinearPolicy::from_text(&text).map_err(CliError::Data)?)
        }
        None => Arc::new(LinearPolicy::default()),
    };

    let threads = args.get_u64("parallel", 1)? as usize;
    let resume_from = match args.get("resume") {
        Some(path) => Some(
            Checkpoint::load(Path::new(path))
                .map_err(|e| CliError::Data(format!("cannot load checkpoint: {e}")))?,
        ),
        None => None,
    };

    // One shared sink for whichever engine runs; `None` leaves the
    // default NullSink in place (tracing off, zero overhead).
    let jsonl = match args.get("trace-out") {
        Some(path) => Some(Arc::new(charon::JsonlSink::create(Path::new(path)).map_err(
            |e| CliError::Data(format!("cannot create trace file {path}: {e}")),
        )?)),
        None => None,
    };
    let sink: Option<charon::telemetry::SharedSink> =
        jsonl.as_ref().map(|s| Arc::clone(s) as _);

    let run: VerifyRun = if threads > 1 {
        let mut verifier = charon::parallel::ParallelVerifier::new(policy, config, threads);
        if let Some(sink) = sink {
            verifier = verifier.with_trace(sink);
        }
        match &resume_from {
            Some(ckpt) => verifier.resume(&net, ckpt)?,
            None => verifier.try_verify_run(&net, &load_property(args.require("property")?)?)?,
        }
    } else {
        let mut verifier = Verifier::new(policy, config);
        if let Some(sink) = sink {
            verifier = verifier.with_trace(sink);
        }
        match &resume_from {
            Some(ckpt) => verifier.resume(&net, ckpt)?,
            None => verifier.try_verify_run(&net, &load_property(args.require("property")?)?)?,
        }
    };

    if let (Some(sink), Some(path)) = (&jsonl, args.get("trace-out")) {
        sink.flush()
            .map_err(|e| CliError::Data(format!("cannot write trace file {path}: {e}")))?;
        writeln!(out, "trace written to {path}").map_err(|e| e.to_string())?;
    }

    if args.switch("report") {
        write!(out, "{}", charon::RunReport::from_run(&run).render())
            .map_err(|e| e.to_string())?;
    }

    if args.switch("stats") {
        let stats = &run.stats;
        writeln!(
            out,
            "stats: regions={} splits={} analyze_calls={} attacks={} max_depth={} elapsed={:?}",
            stats.regions,
            stats.splits,
            stats.analyze_calls,
            stats.attacks,
            stats.max_depth,
            stats.elapsed
        )
        .map_err(|e| e.to_string())?;
        for (domain, count) in &stats.domain_uses {
            writeln!(out, "stats: domain {domain} used {count}x").map_err(|e| e.to_string())?;
        }
    }

    if let Some(path) = args.get("cert-out") {
        match &run.certificate {
            Some(cert) => {
                cert.save(Path::new(path)).map_err(|e| {
                    CliError::Data(format!("cannot write certificate {path}: {e}"))
                })?;
                writeln!(out, "certificate written to {path}").map_err(|e| e.to_string())?;
            }
            // Resource-limit and resumed runs cannot account for the
            // whole split tree, so there is nothing sound to emit.
            None => {
                writeln!(out, "no certificate available").map_err(|e| e.to_string())?;
            }
        }
    }

    match run.verdict {
        Verdict::Verified => {
            writeln!(out, "verified").map_err(|e| e.to_string())?;
            Ok(ExitCode::Success)
        }
        Verdict::Refuted(cex) => {
            writeln!(out, "refuted: F = {:.6} at {:?}", cex.objective, cex.point)
                .map_err(|e| e.to_string())?;
            Ok(ExitCode::Refuted)
        }
        Verdict::ResourceLimit => {
            match run.limit {
                Some(kind) => writeln!(out, "resource limit reached ({kind})"),
                None => writeln!(out, "resource limit reached"),
            }
            .map_err(|e| e.to_string())?;
            if let Some(path) = args.get("checkpoint") {
                match &run.checkpoint {
                    Some(ckpt) => {
                        ckpt.save(Path::new(path)).map_err(|e| {
                            CliError::Data(format!("cannot write checkpoint {path}: {e}"))
                        })?;
                        writeln!(
                            out,
                            "checkpoint written to {path} ({} pending regions)",
                            ckpt.pending.len()
                        )
                        .map_err(|e| e.to_string())?;
                    }
                    None => {
                        writeln!(out, "no checkpoint available").map_err(|e| e.to_string())?;
                    }
                }
            }
            Ok(ExitCode::ResourceLimit)
        }
    }
}

/// Independently re-checks a stored proof certificate against a network.
///
/// Replays every leaf of the split tree (or the refutation witness)
/// with outward-rounded interval arithmetic, so a pass means the
/// verdict holds even if the original search's floats misbehaved. A
/// certificate that fails to parse, checksum, or replay is *rejected*
/// (exit code 1) with the typed reason; only genuinely unreadable
/// files are data errors (65).
fn cmd_audit(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    let net = load_network(args.require("network")?)?;
    let path = args.require("cert")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Data(format!("cannot read certificate {path}: {e}")))?;
    let parsed = cert::Certificate::from_text(&text);
    let outcome = parsed
        .map_err(cert::AuditError::Cert)
        .and_then(|c| cert::audit(&c, &net, &cert::AuditOptions::default()));
    match outcome {
        Ok(report) => {
            let claim = if report.verified { "verified" } else { "refuted" };
            writeln!(
                out,
                "certificate ok: {claim} ({} leaves, {} splits, {} refined regions)",
                report.leaves, report.splits, report.refined_regions
            )
            .map_err(|e| e.to_string())?;
            Ok(ExitCode::Success)
        }
        Err(e) => {
            writeln!(out, "certificate rejected: {e}").map_err(|e| e.to_string())?;
            Ok(ExitCode::Refuted)
        }
    }
}

fn cmd_attack(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    let net = load_network(args.require("network")?)?;
    let property = load_property(args.require("property")?)?;
    let restarts = args.get_u64("restarts", 8)? as usize;
    let seed = args.get_u64("seed", 0)?;
    let result = attack::Minimizer::new(seed)
        .with_restarts(restarts)
        .minimize(&net, property.region(), property.target());
    writeln!(
        out,
        "best objective F = {:.6} at {:?} ({} evaluations)",
        result.objective, result.point, result.evals
    )
    .map_err(|e| e.to_string())?;
    if result.objective <= 0.0 {
        writeln!(out, "counterexample found").map_err(|e| e.to_string())?;
        Ok(ExitCode::Refuted)
    } else {
        writeln!(out, "no counterexample found").map_err(|e| e.to_string())?;
        Ok(ExitCode::Success)
    }
}

fn cmd_train(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    let seed = args.get_u64("seed", 0)?;
    let out_path = args.require("out")?;
    let (net, acc) = data::acas::build_network(seed);
    writeln!(out, "trained ACAS-like network (accuracy {acc:.2})").map_err(|e| e.to_string())?;
    let problems = data::acas::training_properties(&net, seed);
    let config = charon::train::TrainConfig {
        time_limit: Duration::from_millis(args.get_u64("time-limit-ms", 300)?),
        seed,
        ..charon::train::TrainConfig::default()
    };
    let outcome = charon::train::train_policy(&problems, &config);
    writeln!(
        out,
        "learned policy score {:.3}s (default {:.3}s, {} evaluations)",
        outcome.score, outcome.baseline_score, outcome.evaluations
    )
    .map_err(|e| e.to_string())?;
    std::fs::write(out_path, outcome.policy.to_text())
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    writeln!(out, "policy written to {out_path}").map_err(|e| e.to_string())?;
    Ok(ExitCode::Success)
}

fn cmd_info(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    let net = load_network(args.require("network")?)?;
    writeln!(out, "inputs:   {}", net.input_dim()).map_err(|e| e.to_string())?;
    writeln!(out, "outputs:  {}", net.output_dim()).map_err(|e| e.to_string())?;
    writeln!(out, "depth:    {} affine layers", net.depth()).map_err(|e| e.to_string())?;
    writeln!(out, "neurons:  {}", net.neuron_count()).map_err(|e| e.to_string())?;
    writeln!(out, "lipschitz <= {:.4}", net.lipschitz_bound()).map_err(|e| e.to_string())?;
    for (i, layer) in net.layers().iter().enumerate() {
        let desc = match layer {
            nn::Layer::Affine(a) => format!("affine {}x{}", a.output_dim(), a.input_dim()),
            nn::Layer::Relu => "relu".to_string(),
            nn::Layer::MaxPool(p) => format!("maxpool -> {}", p.output_dim()),
        };
        writeln!(out, "layer {i}: {desc}").map_err(|e| e.to_string())?;
    }
    Ok(ExitCode::Success)
}

/// Writes the paper's XOR network and Example 3.1 property to disk so
/// users can try the tool immediately.
fn cmd_example(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    let net_path = args.require("out-network")?;
    let prop_path = args.require("out-property")?;
    let net = nn::samples::xor_network();
    nn::serialize::save(&net, Path::new(net_path))
        .map_err(|e| format!("cannot write {net_path}: {e}"))?;
    let property = RobustnessProperty::new(domains::Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    std::fs::write(prop_path, property.to_text())
        .map_err(|e| format!("cannot write {prop_path}: {e}"))?;
    writeln!(out, "wrote {net_path} and {prop_path}").map_err(|e| e.to_string())?;
    Ok(ExitCode::Success)
}

/// Builds a zoo network, generates a brightening-attack property for one
/// of its evaluation images, and writes both to disk.
fn cmd_prop(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    let zoo_name = args.require("zoo")?;
    let which = data::zoo::ZooNetwork::ALL
        .into_iter()
        .find(|n| n.name() == zoo_name)
        .ok_or_else(|| {
            let names: Vec<&str> = data::zoo::ZooNetwork::ALL
                .iter()
                .map(|n| n.name())
                .collect();
            format!("unknown zoo network {zoo_name:?}; choose one of {names:?}")
        })?;
    let image_idx = args.get_u64("image", 0)? as usize;
    let tau = args.get_f64("tau", 0.6)?;
    let net_path = args.require("out-network")?;
    let prop_path = args.require("out-property")?;

    let config = data::zoo::ZooConfig::default();
    let (net, acc) = data::zoo::build(which, &config);
    writeln!(out, "built {} (test accuracy {acc:.2})", which.name()).map_err(|e| e.to_string())?;
    let eval = which.dataset(image_idx + 1, 0xe4a1);
    let image = eval
        .images
        .get(image_idx)
        .ok_or_else(|| format!("image index {image_idx} out of range"))?;
    let property = RobustnessProperty::new(
        data::properties::brightening_region(image, tau),
        net.classify(image),
    );
    nn::serialize::save(&net, Path::new(net_path))
        .map_err(|e| format!("cannot write {net_path}: {e}"))?;
    std::fs::write(prop_path, property.to_text())
        .map_err(|e| format!("cannot write {prop_path}: {e}"))?;
    writeln!(
        out,
        "wrote {net_path} and {prop_path} (target class {}, {} free pixels)",
        property.target(),
        property
            .region()
            .widths()
            .iter()
            .filter(|w| **w > 0.0)
            .count()
    )
    .map_err(|e| e.to_string())?;
    Ok(ExitCode::Success)
}

/// Certified-accuracy measurement over a zoo network's evaluation set.
fn cmd_certify(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    let zoo_name = args.require("zoo")?;
    let which = data::zoo::ZooNetwork::ALL
        .into_iter()
        .find(|n| n.name() == zoo_name)
        .ok_or_else(|| format!("unknown zoo network {zoo_name:?}"))?;
    let eps = args.get_f64("eps", 0.02)?;
    let n_points = args.get_u64("points", 20)? as usize;
    let timeout = Duration::from_millis(args.get_u64("timeout-ms", 2000)?);

    let (net, acc) = data::zoo::build(which, &data::zoo::ZooConfig::default());
    writeln!(out, "network {} (test accuracy {acc:.2})", which.name())
        .map_err(|e| e.to_string())?;
    let eval = which.dataset(n_points, 0xce47);

    let config = charon::report::CertifyConfig {
        verifier: VerifierConfig {
            timeout,
            ..VerifierConfig::default()
        },
        ..charon::report::CertifyConfig::default()
    };
    let report = charon::report::certify(&net, &eval.images, &eval.labels, eps, &config);
    writeln!(
        out,
        "epsilon {eps}: certified {}/{} ({:.1}%), vulnerable {}, misclassified {}, undecided {} ({:?})",
        report.certified(),
        report.outcomes.len(),
        100.0 * report.certified_accuracy(),
        report.vulnerable(),
        report.misclassified(),
        report.undecided(),
        report.elapsed
    )
    .map_err(|e| e.to_string())?;
    Ok(ExitCode::Success)
}

/// Validates a JSONL trace file (as written by `verify --trace-out`) and
/// prints per-event-kind counts plus an aggregate summary.
///
/// Any line that fails schema validation is a data error (exit 65) naming
/// the file and line number, which makes this the CI check that traces
/// stay parseable.
fn cmd_trace(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    let path = args.require("in")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Data(format!("cannot read {path}: {e}")))?;
    let mut summary = charon::telemetry::TraceSummary::new();
    let mut kinds: std::collections::BTreeMap<&'static str, u64> = std::collections::BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = charon::TraceEvent::from_json(line)
            .map_err(|e| CliError::Data(format!("{path}:{}: {e}", idx + 1)))?;
        *kinds.entry(event.kind()).or_insert(0) += 1;
        summary.absorb(&event);
    }
    writeln!(out, "{}: {} events", path, summary.events).map_err(|e| e.to_string())?;
    for (kind, count) in &kinds {
        writeln!(out, "  {kind}: {count}").map_err(|e| e.to_string())?;
    }
    if summary.propagations > 0 {
        writeln!(
            out,
            "  propagation time: {:.6}s over {} calls",
            summary.propagation_seconds, summary.propagations
        )
        .map_err(|e| e.to_string())?;
    }
    if summary.attack_phases > 0 {
        writeln!(
            out,
            "  attack time: {:.6}s over {} phases (best objective {})",
            summary.attack_seconds, summary.attack_phases, summary.best_objective
        )
        .map_err(|e| e.to_string())?;
    }
    writeln!(out, "  max depth: {}", summary.max_depth).map_err(|e| e.to_string())?;
    Ok(ExitCode::Success)
}

/// Runs the verification daemon in the foreground. Returns once a
/// client drains it (`submit --drain`).
/// The journal path for a daemon: `--journal FILE` wins, `--no-journal`
/// disables, and a Unix-socket daemon otherwise defaults to durability
/// at `<socket>.wal`. TCP daemons have no filesystem anchor to derive a
/// default from, so they journal only on request.
fn journal_path(
    args: &Args,
    addr: &server::ServerAddr,
) -> Result<Option<std::path::PathBuf>, CliError> {
    if args.switch("no-journal") {
        if args.get("journal").is_some() {
            return Err(CliError::Usage(format!(
                "--journal and --no-journal are mutually exclusive\n{}",
                usage()
            )));
        }
        return Ok(None);
    }
    Ok(match (args.get("journal"), addr) {
        (Some(path), _) => Some(std::path::PathBuf::from(path)),
        (None, server::ServerAddr::Unix(sock)) => {
            let mut wal = sock.as_os_str().to_owned();
            wal.push(".wal");
            Some(std::path::PathBuf::from(wal))
        }
        (None, _) => None,
    })
}

/// Chaos-test fault schedule from the `--fault-*` flags, `None` when no
/// fault flag was passed (the production configuration).
fn fault_plan(args: &Args) -> Result<Option<Arc<server::ServerFaultPlan>>, CliError> {
    let mut builder = server::ServerFaultPlanBuilder::new();
    let mut any = false;
    if args.get("fault-kill-job").is_some() {
        builder = builder.kill_job(args.get_u64("fault-kill-job", 0).map_err(CliError::Usage)?);
        any = true;
    }
    if args.get("fault-worker-kill").is_some() {
        let ordinal = args.get_u64("fault-worker-kill", 0).map_err(CliError::Usage)? as usize;
        builder = builder.kill_worker_at_pop(ordinal);
        any = true;
    }
    if args.get("fault-node-kill").is_some() {
        let ordinal = args.get_u64("fault-node-kill", 0).map_err(CliError::Usage)? as usize;
        builder = builder.kill_node_at_dispatch(ordinal);
        any = true;
    }
    if args.get("fault-shard-drop").is_some() {
        let ordinal = args.get_u64("fault-shard-drop", 0).map_err(CliError::Usage)? as usize;
        builder = builder.drop_shard_result(ordinal);
        any = true;
    }
    if args.get("fault-shard-stall").is_some() {
        let ordinal = args.get_u64("fault-shard-stall", 0).map_err(CliError::Usage)? as usize;
        let millis = args
            .get_u64("fault-shard-stall-ms", 30_000)
            .map_err(CliError::Usage)?;
        builder = builder.stall_shard(ordinal, millis);
        any = true;
    }
    Ok(any.then(|| Arc::new(builder.build())))
}

fn cmd_serve(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    if args.switch("coordinator") {
        return cmd_serve_coordinator(args, out);
    }
    let addr = server::ServerAddr::parse(args.require("addr")?).map_err(CliError::Usage)?;
    let journal = journal_path(args, &addr)?;
    let journal_banner = match &journal {
        Some(path) => format!("journaling to {}", path.display()),
        None => "journal disabled (a crash loses queued jobs)".to_string(),
    };
    let defaults = server::ServerConfig::default();
    let config = server::ServerConfig {
        addr,
        workers: args.get_u64("workers", 2)? as usize,
        queue_capacity: args.get_u64("queue", 64)? as usize,
        cache_capacity: args.get_u64("cache", 256)? as usize,
        // Adaptive load shedding is opt-in: without --shed-target-ms
        // the only admission bound is the queue capacity.
        shed_target: match args.get("shed-target-ms") {
            Some(_) => Some(Duration::from_millis(args.get_u64("shed-target-ms", 0)?)),
            None => None,
        },
        shed_interval: Duration::from_millis(
            args.get_u64("shed-interval-ms", defaults.shed_interval.as_millis() as u64)?,
        ),
        reply_margin: Duration::from_millis(
            args.get_u64("reply-margin-ms", defaults.reply_margin.as_millis() as u64)?,
        ),
        journal,
        faults: fault_plan(args)?,
        ..defaults
    };
    let handle = server::Server::start(config)
        .map_err(|e| CliError::Unavailable(format!("cannot start daemon: {e}")))?;
    writeln!(out, "listening on {}", handle.addr()).map_err(|e| e.to_string())?;
    writeln!(out, "{journal_banner}").map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    handle.join();
    writeln!(out, "daemon drained, shutting down").map_err(|e| e.to_string())?;
    Ok(ExitCode::Success)
}

/// Runs the cluster coordinator in the foreground: shards each accepted
/// job's input region across `--nodes` and merges the shard verdicts.
/// Returns once a client drains it.
fn cmd_serve_coordinator(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    let addr = server::ServerAddr::parse(args.require("addr")?).map_err(CliError::Usage)?;
    let nodes = args
        .require("nodes")?
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| server::ServerAddr::parse(part.trim()).map_err(CliError::Usage))
        .collect::<Result<Vec<_>, _>>()?;
    if nodes.is_empty() {
        return Err(CliError::Usage(format!(
            "--nodes needs at least one node address\n{}",
            usage()
        )));
    }
    let journal = journal_path(args, &addr)?;
    let journal_banner = match &journal {
        Some(path) => format!("journaling to {}", path.display()),
        None => "journal disabled (a crash loses accepted jobs)".to_string(),
    };
    let config = server::CoordinatorConfig {
        addr,
        nodes,
        shards: args.get_u64("shards", 0)? as usize,
        connections_per_node: args.get_u64("conns-per-node", 2)? as usize,
        retry_budget: args.get_u64("retry-budget", 2)? as u32,
        node_grace: Duration::from_millis(args.get_u64("node-grace-ms", 10_000)?),
        breaker_threshold: args.get_u64("breaker-threshold", 3)? as u32,
        breaker_cooldown: Duration::from_millis(args.get_u64("breaker-cooldown-ms", 5_000)?),
        journal,
        faults: fault_plan(args)?,
        ..server::CoordinatorConfig::default()
    };
    let nodes_banner = config
        .nodes
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    let handle = server::Coordinator::start(config)
        .map_err(|e| CliError::Unavailable(format!("cannot start coordinator: {e}")))?;
    writeln!(out, "coordinating on {}", handle.addr()).map_err(|e| e.to_string())?;
    writeln!(out, "nodes: {nodes_banner}").map_err(|e| e.to_string())?;
    writeln!(out, "{journal_banner}").map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    handle.join();
    writeln!(out, "coordinator drained, shutting down").map_err(|e| e.to_string())?;
    Ok(ExitCode::Success)
}

/// Runs a shard-worker node in the foreground: a plain daemon tuned for
/// cluster duty. Shard requests are executed synchronously and are the
/// coordinator's responsibility to re-dispatch, so the node journals
/// only when `--journal FILE` is given explicitly.
fn cmd_node(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    let addr = server::ServerAddr::parse(args.require("addr")?).map_err(CliError::Usage)?;
    let journal = args.get("journal").map(std::path::PathBuf::from);
    let defaults = server::ServerConfig::default();
    let config = server::ServerConfig {
        addr,
        workers: args.get_u64("workers", 2)? as usize,
        reply_margin: Duration::from_millis(
            args.get_u64("reply-margin-ms", defaults.reply_margin.as_millis() as u64)?,
        ),
        journal,
        faults: fault_plan(args)?,
        ..defaults
    };
    let handle = server::Server::start(config)
        .map_err(|e| CliError::Unavailable(format!("cannot start node: {e}")))?;
    writeln!(out, "node listening on {}", handle.addr()).map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;
    handle.join();
    writeln!(out, "node drained, shutting down").map_err(|e| e.to_string())?;
    Ok(ExitCode::Success)
}

/// Any transport failure talking to the daemon is an availability
/// problem, not a data or engine problem.
fn io_unavailable(e: std::io::Error) -> CliError {
    CliError::Unavailable(format!("daemon connection failed: {e}"))
}

/// Connects once, without retry, for the control requests (`--ping`,
/// `--stats`, `--drain`, `--query`): they are status reads or explicit
/// shutdowns, so an unreachable daemon is itself the answer.
fn control_client(addr: &server::ServerAddr) -> Result<server::Client, CliError> {
    server::Client::connect(addr)
        .map_err(|e| CliError::Unavailable(format!("cannot connect to {addr}: {e}")))
}

/// One-shot client for a running daemon: submits a verify job over the
/// reliable path (idempotent id, retry with backoff), or sends the
/// matching control request for `--query` / `--stats` / `--drain` /
/// `--ping`.
fn cmd_submit(args: &Args, out: &mut impl std::io::Write) -> Result<ExitCode, CliError> {
    let addr = server::ServerAddr::parse(args.require("addr")?).map_err(CliError::Usage)?;

    if args.switch("ping") {
        let mut client = control_client(&addr)?;
        let reply = client
            .request("{\"request\": \"ping\"}")
            .map_err(io_unavailable)?;
        let protocol = reply.usize_field("protocol").map_err(CliError::Engine)?;
        writeln!(out, "pong (protocol {protocol})").map_err(|e| e.to_string())?;
        return Ok(ExitCode::Success);
    }

    if args.switch("stats") {
        let mut client = control_client(&addr)?;
        let reply = client
            .request("{\"request\": \"stats\"}")
            .map_err(io_unavailable)?;
        // Render every counter on its own `name: value` line so shell
        // scripts can grep a single field.
        for key in [
            "protocol",
            "workers",
            "queue_depth",
            "queue_capacity",
            "draining",
            "accepted",
            "completed",
            "checkpointed",
            "unstarted",
            "rejected_full",
            "rejected_draining",
            "errored",
            "shed",
            "deadline_expired",
            "breaker_open",
            "breaker_opens",
            "replayed",
            "requeued",
            "quarantined",
            "worker_deaths",
            "duplicates",
            "journal_errors",
            "journal_enabled",
            "journal_appends",
            "results_entries",
            "cache_entries",
            "cache_hits",
            "cache_misses",
            "cache_evictions",
            "registry_models",
            "registry_hits",
            "registry_misses",
            "attack_calls",
            "propagation_calls",
            "policy_calls",
        ] {
            let value = reply.usize_field(key).map_err(CliError::Engine)?;
            writeln!(out, "{key}: {value}").map_err(|e| e.to_string())?;
        }
        let hit_rate = reply.f64_field("cache_hit_rate").map_err(CliError::Engine)?;
        writeln!(out, "cache_hit_rate: {hit_rate:.3}").map_err(|e| e.to_string())?;
        return Ok(ExitCode::Success);
    }

    if args.switch("drain") {
        let mut client = control_client(&addr)?;
        let reply = client
            .request("{\"request\": \"drain\"}")
            .map_err(io_unavailable)?;
        let lost = reply.f64_field("lost").map_err(CliError::Engine)? as i64;
        writeln!(
            out,
            "drained: accepted={} completed={} checkpointed={} unstarted={} lost={lost}",
            reply.usize_field("accepted").map_err(CliError::Engine)?,
            reply.usize_field("completed").map_err(CliError::Engine)?,
            reply.usize_field("checkpointed").map_err(CliError::Engine)?,
            reply.usize_field("unstarted").map_err(CliError::Engine)?,
        )
        .map_err(|e| e.to_string())?;
        return if lost == 0 {
            Ok(ExitCode::Success)
        } else {
            Err(CliError::Engine(format!("daemon lost {lost} job(s) during drain")))
        };
    }

    if args.get("query").is_some() {
        let id = args.get_u64("query", 0)?;
        let mut client = control_client(&addr)?;
        let reply = client
            .request(&server::VerifyRequest::query_line(id))
            .map_err(io_unavailable)?;
        return match reply.str_field("response").map_err(CliError::Engine)?.as_str() {
            "pending" => {
                writeln!(out, "job {id} is pending (queued or in flight)")
                    .map_err(|e| e.to_string())?;
                Ok(ExitCode::Success)
            }
            "unknown" => Err(CliError::Unavailable(format!(
                "job {id} is unknown to the daemon; resubmit it"
            ))),
            _ => render_terminal(&reply, args, out),
        };
    }

    let prop_path = args.require("property")?;
    let property = std::fs::read_to_string(prop_path)
        .map_err(|e| CliError::Data(format!("cannot read {prop_path}: {e}")))?;
    let request = server::VerifyRequest {
        // A fresh default id per invocation keeps the daemon's
        // idempotency window from conflating two unrelated submissions
        // that both omitted --id.
        id: match args.get("id") {
            Some(_) => args.get_u64("id", 0)?,
            None => unique_job_id(),
        },
        network: args.require("network")?.to_string(),
        property,
        priority: args.get_f64("priority", 0.0)? as i64,
        deadline_ms: match args.get("deadline-ms") {
            Some(_) => Some(args.get_u64("deadline-ms", 0)?),
            None => None,
        },
        timeout_ms: args.get_u64("timeout-ms", server::protocol::DEFAULT_TIMEOUT_MS)?,
        delta: args.get_f64("delta", 1e-9)?,
        max_regions: args.get_u64("max-regions", 200_000)? as usize,
        restarts: args.get_u64("restarts", 2)? as usize,
        seed: args.get_u64("seed", 0)?,
        cex_search: !args.switch("no-cex"),
        cert: args.get("cert-out").is_some(),
        ack: true,
    };
    let policy = server::RetryPolicy {
        max_attempts: (args.get_u64("retries", 3)? as u32).saturating_add(1),
        ..server::RetryPolicy::default()
    };
    let reply = server::submit_reliable(&addr, &request, &policy).map_err(|e| match e {
        server::ClientError::Io(err) => io_unavailable(err),
        server::ClientError::Protocol(msg) => {
            CliError::Engine(format!("daemon protocol error: {msg}"))
        }
        exhausted @ server::ClientError::RetriesExhausted { .. } => {
            CliError::Unavailable(exhausted.to_string())
        }
    })?;
    render_terminal(&reply, args, out)
}

/// A practically-unique default job id: epoch nanoseconds mixed with the
/// process id, so concurrent clients that both omit `--id` do not
/// collide in the daemon's idempotency window. Ids travel as JSON
/// numbers (`f64` on the wire), so the value is masked into the 53-bit
/// range that round-trips exactly.
fn unique_job_id() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(1);
    ((nanos ^ (u64::from(std::process::id()) << 40)) & ((1 << 53) - 1)) | 1
}

/// Writes the `cert` field of a decisive daemon verdict to the path the
/// user gave with `--cert-out`. A daemon that computed the verdict
/// without certification (a pre-v4 daemon, a cache hit on an
/// uncertified entry, or a resource-limited shard merge) omits the
/// field; that is reported, not an error — the verdict itself stands.
fn write_submitted_cert(
    reply: &charon::json::Fields,
    args: &Args,
    out: &mut impl std::io::Write,
) -> Result<(), CliError> {
    let Some(path) = args.get("cert-out") else {
        return Ok(());
    };
    match reply.opt_str("cert").map_err(CliError::Engine)? {
        Some(text) => {
            std::fs::write(path, text)
                .map_err(|e| CliError::Data(format!("cannot write certificate {path}: {e}")))?;
            writeln!(out, "certificate written to {path}").map_err(|e| e.to_string())?;
        }
        None => {
            writeln!(out, "no certificate available").map_err(|e| e.to_string())?;
        }
    }
    Ok(())
}

/// Renders a terminal daemon response (`verdict`, `checkpointed`,
/// `unstarted`, or a non-retryable `error`) and maps it to an exit code.
fn render_terminal(
    reply: &charon::json::Fields,
    args: &Args,
    out: &mut impl std::io::Write,
) -> Result<ExitCode, CliError> {
    match reply.str_field("response").map_err(CliError::Engine)?.as_str() {
        "verdict" => {
            let cached = reply.opt_usize("cached").map_err(CliError::Engine)?.unwrap_or(0);
            let provenance = if cached != 0 { " (cached)" } else { "" };
            match reply.str_field("verdict").map_err(CliError::Engine)?.as_str() {
                "verified" => {
                    writeln!(out, "verified{provenance}").map_err(|e| e.to_string())?;
                    write_submitted_cert(reply, args, out)?;
                    Ok(ExitCode::Success)
                }
                "refuted" => {
                    let objective = reply.opt_f64("objective").map_err(CliError::Engine)?;
                    let point = reply
                        .opt("counterexample")
                        .map(|_| reply.arr_field("counterexample"))
                        .transpose()
                        .map_err(CliError::Engine)?;
                    match (objective, point) {
                        (Some(objective), Some(point)) => writeln!(
                            out,
                            "refuted{provenance}: F = {objective:.6} at {point:?}"
                        ),
                        _ => writeln!(out, "refuted{provenance}"),
                    }
                    .map_err(|e| e.to_string())?;
                    write_submitted_cert(reply, args, out)?;
                    Ok(ExitCode::Refuted)
                }
                "resource_limit" => {
                    match reply.opt_str("limit").map_err(CliError::Engine)? {
                        Some(kind) => writeln!(out, "resource limit reached ({kind})"),
                        None => writeln!(out, "resource limit reached"),
                    }
                    .map_err(|e| e.to_string())?;
                    Ok(ExitCode::ResourceLimit)
                }
                "poisoned" => {
                    let attempts = reply
                        .opt_usize("attempts")
                        .map_err(CliError::Engine)?
                        .unwrap_or(0);
                    let diagnostic = reply
                        .opt_str("diagnostic")
                        .map_err(CliError::Engine)?
                        .unwrap_or_default();
                    writeln!(
                        out,
                        "poisoned: job quarantined after killing {attempts} worker(s): {diagnostic}"
                    )
                    .map_err(|e| e.to_string())?;
                    Ok(ExitCode::EngineError)
                }
                other => Err(CliError::Engine(format!("unknown verdict {other:?}"))),
            }
        }
        "checkpointed" => {
            let regions = reply.usize_field("regions_done").map_err(CliError::Engine)?;
            writeln!(
                out,
                "daemon drained mid-run after {regions} regions; job is resumable"
            )
            .map_err(|e| e.to_string())?;
            if let Some(path) = args.get("checkpoint") {
                let text = reply.str_field("checkpoint").map_err(CliError::Engine)?;
                std::fs::write(path, text)
                    .map_err(|e| CliError::Data(format!("cannot write checkpoint {path}: {e}")))?;
                writeln!(out, "checkpoint written to {path}").map_err(|e| e.to_string())?;
            }
            Ok(ExitCode::ResourceLimit)
        }
        "unstarted" => {
            writeln!(out, "daemon drained before the job started; resubmit it elsewhere")
                .map_err(|e| e.to_string())?;
            Ok(ExitCode::Unavailable)
        }
        // Normally absorbed by submit_reliable's retry loop; reaching
        // here means every retry was refused (or the deadline ran out).
        "busy" => {
            let hint = reply
                .opt_usize("retry_after_ms")
                .map_err(CliError::Engine)?
                .unwrap_or(0);
            Err(CliError::Unavailable(format!(
                "server is shedding load; retry in {hint} ms"
            )))
        }
        "error" => {
            let code = reply.str_field("error").map_err(CliError::Engine)?;
            let message = reply
                .opt_str("message")
                .map_err(CliError::Engine)?
                .unwrap_or_default();
            let rendered = format!("{code}: {message}");
            match code.as_str() {
                "queue_full" | "draining" | "journal_error" => {
                    Err(CliError::Unavailable(rendered))
                }
                "bad_request" | "model_error" | "deadline_expired" => {
                    Err(CliError::Data(rendered))
                }
                _ => Err(CliError::Engine(rendered)),
            }
        }
        other => Err(CliError::Engine(format!("unknown response kind {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    fn run_capture(parts: &[&str]) -> (ExitCode, String) {
        let mut buf = Vec::new();
        let code = run(&argv(parts), &mut buf);
        (code, String::from_utf8(buf).unwrap())
    }

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "charon-cli-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn usage_error_on_unknown_command() {
        let (code, output) = run_capture(&["frobnicate"]);
        assert_eq!(code, ExitCode::UsageError);
        assert!(output.contains("unknown command"));
    }

    #[test]
    fn usage_error_on_missing_flag_value() {
        let (code, output) = run_capture(&["verify", "--network"]);
        assert_eq!(code, ExitCode::UsageError);
        assert!(output.contains("needs a value"));
    }

    #[test]
    fn example_then_verify_roundtrip() {
        let dir = temp_dir();
        let net = dir.join("xor.net");
        let prop = dir.join("robust.prop");
        let (code, _) = run_capture(&[
            "example",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Success);

        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--property",
            prop.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("verified"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn verify_refutes_wide_property() {
        let dir = temp_dir();
        let net_path = dir.join("xor.net");
        let prop_path = dir.join("wide.prop");
        nn::serialize::save(&nn::samples::xor_network(), &net_path).unwrap();
        let property =
            RobustnessProperty::new(domains::Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        std::fs::write(&prop_path, property.to_text()).unwrap();

        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net_path.to_str().unwrap(),
            "--property",
            prop_path.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Refuted, "output: {output}");
        assert!(output.contains("refuted"));

        // The attack subcommand finds the same violation.
        let (code, output) = run_capture(&[
            "attack",
            "--network",
            net_path.to_str().unwrap(),
            "--property",
            prop_path.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Refuted, "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn info_describes_network() {
        let dir = temp_dir();
        let net_path = dir.join("xor.net");
        nn::serialize::save(&nn::samples::xor_network(), &net_path).unwrap();
        let (code, output) = run_capture(&["info", "--network", net_path.to_str().unwrap()]);
        assert_eq!(code, ExitCode::Success);
        assert!(output.contains("inputs:   2"));
        assert!(output.contains("affine 2x2"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn parallel_flag_accepted() {
        let dir = temp_dir();
        let net = dir.join("xor.net");
        let prop = dir.join("p.prop");
        run_capture(&[
            "example",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);
        let (code, _) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--property",
            prop.to_str().unwrap(),
            "--parallel",
            "3",
        ]);
        assert_eq!(code, ExitCode::Success);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn prop_subcommand_generates_verifiable_files() {
        let dir = temp_dir();
        let net = dir.join("zoo.net");
        let prop = dir.join("zoo.prop");
        let (code, output) = run_capture(&[
            "prop",
            "--zoo",
            "mnist-3x32",
            "--image",
            "1",
            "--tau",
            "0.9",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        // The generated pair loads and verifies/refutes without error.
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--property",
            prop.to_str().unwrap(),
            "--timeout-ms",
            "5000",
        ]);
        assert_ne!(code, ExitCode::UsageError, "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn prop_rejects_unknown_zoo() {
        let (code, output) = run_capture(&[
            "prop",
            "--zoo",
            "bogus",
            "--out-network",
            "/tmp/x",
            "--out-property",
            "/tmp/y",
        ]);
        assert_eq!(code, ExitCode::UsageError);
        assert!(output.contains("unknown zoo network"));
    }

    #[test]
    fn stats_switch_prints_counters() {
        let dir = temp_dir();
        let net = dir.join("xor.net");
        let prop = dir.join("p.prop");
        run_capture(&[
            "example",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--property",
            prop.to_str().unwrap(),
            "--stats",
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("stats: regions="), "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn report_switch_prints_phase_breakdown() {
        let dir = temp_dir();
        let net = dir.join("xor.net");
        let prop = dir.join("p.prop");
        run_capture(&[
            "example",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--property",
            prop.to_str().unwrap(),
            "--report",
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("run report: verified"), "output: {output}");
        assert!(output.contains("regions/s"), "output: {output}");
        assert!(output.contains("propagation"), "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn trace_out_then_trace_in_roundtrips() {
        let dir = temp_dir();
        let net = dir.join("xor.net");
        let prop = dir.join("p.prop");
        let trace = dir.join("run.jsonl");
        run_capture(&[
            "example",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--property",
            prop.to_str().unwrap(),
            "--trace-out",
            trace.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("trace written to"), "output: {output}");

        // Every line the verifier wrote must round-trip through the
        // schema validator, and the stream must contain a verdict.
        let (code, output) = run_capture(&["trace", "--in", trace.to_str().unwrap()]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("verdict: 1"), "output: {output}");
        assert!(output.contains("region_popped"), "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_trace_file_is_a_data_error() {
        let dir = temp_dir();
        let trace = dir.join("bad.jsonl");
        std::fs::write(&trace, "{\"event\":\"region_popped\",\"ordinal\":0,\"depth\":0}\nnot json\n")
            .unwrap();
        let (code, output) = run_capture(&["trace", "--in", trace.to_str().unwrap()]);
        assert_eq!(code, ExitCode::DataError, "output: {output}");
        // The diagnostic names the offending line.
        assert!(output.contains(":2:"), "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn certify_subcommand_reports_accuracy() {
        let (code, output) = run_capture(&[
            "certify",
            "--zoo",
            "mnist-3x32",
            "--eps",
            "0.01",
            "--points",
            "5",
            "--timeout-ms",
            "3000",
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("certified"), "output: {output}");
    }

    #[test]
    fn help_switch() {
        let (code, output) = run_capture(&["verify", "--help"]);
        assert_eq!(code, ExitCode::Success);
        assert!(output.contains("usage"));
    }

    #[test]
    fn missing_network_file_is_a_data_error() {
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            "/nonexistent/net.txt",
            "--property",
            "/nonexistent/p.prop",
        ]);
        assert_eq!(code, ExitCode::DataError, "output: {output}");
        // One-line diagnostic naming the failure.
        assert!(output.starts_with("error: cannot load network:"), "output: {output}");
        assert_eq!(output.lines().count(), 1, "output: {output}");
    }

    #[test]
    fn malformed_network_file_is_a_data_error() {
        let dir = temp_dir();
        let net_path = dir.join("broken.net");
        std::fs::write(&net_path, "charon-net 1\ninput 2\naffine 2 2\n1 0\n").unwrap();
        let (code, output) = run_capture(&[
            "info",
            "--network",
            net_path.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::DataError, "output: {output}");
        assert!(output.contains("cannot load network"), "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn nan_weights_are_a_data_error_not_an_engine_crash() {
        // The file parses (NaN is a valid float token) but the verifier's
        // problem validation must reject it as a malformed model.
        let dir = temp_dir();
        let net_path = dir.join("nan.net");
        let prop_path = dir.join("p.prop");
        std::fs::write(
            &net_path,
            "charon-net 1\ninput 2\naffine 2 2\nNaN 1\n1 0\n0 0\nend\n",
        )
        .unwrap();
        let property =
            RobustnessProperty::new(domains::Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
        std::fs::write(&prop_path, property.to_text()).unwrap();
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net_path.to_str().unwrap(),
            "--property",
            prop_path.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::DataError, "output: {output}");
        assert!(output.contains("non-finite"), "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn checkpoint_then_resume_reaches_a_verdict() {
        let dir = temp_dir();
        let net = dir.join("xor.net");
        let prop = dir.join("p.prop");
        let ckpt = dir.join("run.ckpt");
        run_capture(&[
            "example",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);

        // A zero timeout trips the budget check before the first region,
        // so the whole worklist lands in the checkpoint.
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--property",
            prop.to_str().unwrap(),
            "--timeout-ms",
            "0",
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::ResourceLimit, "output: {output}");
        assert!(output.contains("resource limit reached (timeout)"), "output: {output}");
        assert!(output.contains("checkpoint written"), "output: {output}");
        assert!(ckpt.exists());

        // Resuming with a sane budget finishes the proof.
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("verified"), "output: {output}");

        // The parallel engine accepts the same checkpoint.
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
            "--parallel",
            "2",
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn cert_emission_and_audit_round_trip_for_both_verdicts() {
        let dir = temp_dir();
        let net = dir.join("xor.net");
        let prop = dir.join("p.prop");
        let cert_path = dir.join("proof.cert");
        run_capture(&[
            "example",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);

        // Verified: emit a certificate and let the auditor confirm it.
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--property",
            prop.to_str().unwrap(),
            "--cert-out",
            cert_path.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("certificate written to"), "output: {output}");
        let (code, output) = run_capture(&[
            "audit",
            "--network",
            net.to_str().unwrap(),
            "--cert",
            cert_path.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("certificate ok: verified"), "output: {output}");

        // Refuted: the unit square contains inputs classified 0, so the
        // certificate carries a witness instead of a split tree.
        let refuted_prop = dir.join("wide.prop");
        let property =
            RobustnessProperty::new(domains::Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
        std::fs::write(&refuted_prop, property.to_text()).unwrap();
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--property",
            refuted_prop.to_str().unwrap(),
            "--cert-out",
            cert_path.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Refuted, "output: {output}");
        assert!(output.contains("certificate written to"), "output: {output}");
        let (code, output) = run_capture(&[
            "audit",
            "--network",
            net.to_str().unwrap(),
            "--cert",
            cert_path.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("certificate ok: refuted"), "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn audit_rejects_a_corrupted_certificate() {
        let dir = temp_dir();
        let net = dir.join("xor.net");
        let prop = dir.join("p.prop");
        let cert_path = dir.join("proof.cert");
        run_capture(&[
            "example",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--property",
            prop.to_str().unwrap(),
            "--cert-out",
            cert_path.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");

        // Flip one byte in the body; the checksum must catch it and the
        // audit must exit nonzero with the typed rejection.
        let mut bytes = std::fs::read(&cert_path).unwrap();
        let pos = bytes
            .iter()
            .position(|b| b.is_ascii_digit() && *b != b'0')
            .expect("certificate has a nonzero digit");
        bytes[pos] = if bytes[pos] == b'9' { b'8' } else { b'9' };
        std::fs::write(&cert_path, &bytes).unwrap();
        let (code, output) = run_capture(&[
            "audit",
            "--network",
            net.to_str().unwrap(),
            "--cert",
            cert_path.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Refuted, "output: {output}");
        assert!(output.contains("certificate rejected"), "output: {output}");

        // A missing certificate file is a data error, not a rejection.
        let (code, output) = run_capture(&[
            "audit",
            "--network",
            net.to_str().unwrap(),
            "--cert",
            dir.join("nope.cert").to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::DataError, "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn limited_run_with_cert_out_reports_no_certificate() {
        let dir = temp_dir();
        let net = dir.join("xor.net");
        let prop = dir.join("p.prop");
        let cert_path = dir.join("proof.cert");
        run_capture(&[
            "example",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--property",
            prop.to_str().unwrap(),
            "--timeout-ms",
            "0",
            "--cert-out",
            cert_path.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::ResourceLimit, "output: {output}");
        assert!(output.contains("no certificate available"), "output: {output}");
        assert!(!cert_path.exists());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn resume_and_property_are_mutually_exclusive() {
        // Silently ignoring the property file would let a user resume
        // against the wrong checkpoint without any warning.
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            "/nonexistent/net.txt",
            "--property",
            "/nonexistent/p.prop",
            "--resume",
            "/nonexistent/run.ckpt",
        ]);
        assert_eq!(code, ExitCode::UsageError, "output: {output}");
        assert!(output.contains("mutually exclusive"), "output: {output}");
    }

    #[test]
    fn malformed_checkpoint_is_a_data_error() {
        let dir = temp_dir();
        let net = dir.join("xor.net");
        let prop = dir.join("p.prop");
        let ckpt = dir.join("bad.ckpt");
        run_capture(&[
            "example",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);
        std::fs::write(&ckpt, "not a checkpoint\n").unwrap();
        let (code, output) = run_capture(&[
            "verify",
            "--network",
            net.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::DataError, "output: {output}");
        assert!(output.contains("cannot load checkpoint"), "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        let codes = [
            ExitCode::Success,
            ExitCode::Refuted,
            ExitCode::ResourceLimit,
            ExitCode::UsageError,
            ExitCode::DataError,
            ExitCode::Unavailable,
            ExitCode::EngineError,
        ];
        assert_eq!(
            codes.map(ExitCode::code),
            [0, 1, 2, 64, 65, 69, 70],
            "exit codes are a published interface"
        );
    }

    #[test]
    fn unique_job_ids_round_trip_as_json_numbers() {
        let a = unique_job_id();
        std::thread::sleep(std::time::Duration::from_micros(10));
        let b = unique_job_id();
        for id in [a, b] {
            assert!(id > 0, "id must be nonzero");
            assert!(id < (1 << 53), "id must be f64-exact, got {id}");
            assert_eq!(id as f64 as u64, id, "id must survive the wire format");
        }
        assert_ne!(a, b, "successive invocations must not collide");
    }

    #[test]
    fn serve_rejects_contradictory_journal_flags() {
        let (code, output) = run_capture(&[
            "serve",
            "--addr",
            "/tmp/never-bound.sock",
            "--journal",
            "/tmp/never-written.wal",
            "--no-journal",
        ]);
        assert_eq!(code, ExitCode::UsageError, "output: {output}");
        assert!(output.contains("mutually exclusive"), "output: {output}");
    }

    #[test]
    fn submit_to_missing_daemon_is_unavailable() {
        let dir = temp_dir();
        let sock = dir.join("nobody-home.sock");
        let (code, output) = run_capture(&[
            "submit",
            "--addr",
            sock.to_str().unwrap(),
            "--ping",
        ]);
        assert_eq!(code, ExitCode::Unavailable, "output: {output}");
        assert!(output.contains("cannot connect"), "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn submit_rejects_bad_address_scheme() {
        let (code, output) = run_capture(&["submit", "--addr", "ftp:example.com:21", "--ping"]);
        assert_eq!(code, ExitCode::UsageError, "output: {output}");
    }

    #[test]
    fn serve_then_submit_full_lifecycle() {
        let dir = temp_dir();
        let sock = dir.join("daemon.sock");
        let net = dir.join("xor.net");
        let prop = dir.join("p.prop");
        run_capture(&[
            "example",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);

        // The daemon runs in the foreground until drained, so host it on
        // a helper thread and drive it with `submit` from this one.
        let sock_str = sock.to_str().unwrap().to_string();
        let daemon = std::thread::spawn({
            let sock_str = sock_str.clone();
            move || run_capture(&["serve", "--addr", &sock_str, "--workers", "1"])
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !sock.exists() {
            assert!(std::time::Instant::now() < deadline, "daemon never bound");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }

        // First submission computes, the duplicate must be served from
        // the result cache.
        for expect_cached in [false, true] {
            let (code, output) = run_capture(&[
                "submit",
                "--addr",
                &sock_str,
                "--network",
                net.to_str().unwrap(),
                "--property",
                prop.to_str().unwrap(),
            ]);
            assert_eq!(code, ExitCode::Success, "output: {output}");
            assert_eq!(
                output.contains("(cached)"),
                expect_cached,
                "output: {output}"
            );
        }

        let (code, output) = run_capture(&["submit", "--addr", &sock_str, "--stats"]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("cache_hits: 1"), "output: {output}");
        assert!(output.contains("completed: 2"), "output: {output}");

        let (code, output) = run_capture(&["submit", "--addr", &sock_str, "--drain"]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("lost=0"), "output: {output}");

        let (code, output) = daemon.join().unwrap();
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("listening on"), "output: {output}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn coordinator_with_two_nodes_full_lifecycle() {
        let dir = temp_dir();
        let net = dir.join("xor.net");
        let prop = dir.join("p.prop");
        run_capture(&[
            "example",
            "--out-network",
            net.to_str().unwrap(),
            "--out-property",
            prop.to_str().unwrap(),
        ]);

        // Two shard-worker nodes plus the coordinator, each in the
        // foreground on its own thread.
        let node_socks: Vec<String> = (0..2)
            .map(|i| dir.join(format!("node{i}.sock")).to_str().unwrap().to_string())
            .collect();
        let nodes: Vec<_> = node_socks
            .iter()
            .map(|sock| {
                let sock = sock.clone();
                std::thread::spawn(move || {
                    run_capture(&["node", "--addr", &sock, "--workers", "1"])
                })
            })
            .collect();
        let coord_sock = dir.join("coord.sock").to_str().unwrap().to_string();
        let coordinator = std::thread::spawn({
            let coord_sock = coord_sock.clone();
            let nodes = node_socks.join(",");
            move || {
                run_capture(&[
                    "serve",
                    "--addr",
                    &coord_sock,
                    "--coordinator",
                    "--nodes",
                    &nodes,
                    "--shards",
                    "4",
                ])
            }
        });
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !std::path::Path::new(&coord_sock).exists() {
            assert!(std::time::Instant::now() < deadline, "coordinator never bound");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }

        let (code, output) = run_capture(&[
            "submit",
            "--addr",
            &coord_sock,
            "--network",
            net.to_str().unwrap(),
            "--property",
            prop.to_str().unwrap(),
        ]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("verified"), "output: {output}");

        let (code, output) = run_capture(&["submit", "--addr", &coord_sock, "--stats"]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("completed: 1"), "output: {output}");

        let (code, output) = run_capture(&["submit", "--addr", &coord_sock, "--drain"]);
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("lost=0"), "output: {output}");
        let (code, output) = coordinator.join().unwrap();
        assert_eq!(code, ExitCode::Success, "output: {output}");
        assert!(output.contains("coordinating on"), "output: {output}");

        for (node, sock) in nodes.into_iter().zip(&node_socks) {
            let (code, output) = run_capture(&["submit", "--addr", sock, "--drain"]);
            assert_eq!(code, ExitCode::Success, "output: {output}");
            let (code, output) = node.join().unwrap();
            assert_eq!(code, ExitCode::Success, "output: {output}");
        }
        let _ = std::fs::remove_dir_all(dir);
    }
}
