//! End-to-end chaos tests against the real `charon-cli` binary: a
//! journaled daemon is SIGKILLed mid-stream and restarted, and every
//! submitted job must still resolve exactly once; a poison job that
//! repeatedly kills workers must come back as a typed `poisoned`
//! verdict with exit code 70.
//!
//! These tests spawn real processes (`CARGO_BIN_EXE_charon-cli`), so
//! they exercise the whole stack: argument parsing, the reliable
//! submission path with reconnect/backoff, the write-ahead journal,
//! replay, and worker supervision.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_charon-cli");

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "charon-chaos-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes the example network/property pair into `dir` via the library
/// entry point (no daemon involved).
fn example_files(dir: &Path) -> (PathBuf, PathBuf) {
    let net = dir.join("xor.net");
    let prop = dir.join("p.prop");
    let mut out = Vec::new();
    let code = cli::run(
        &[
            "example".to_string(),
            "--out-network".to_string(),
            net.to_str().unwrap().to_string(),
            "--out-property".to_string(),
            prop.to_str().unwrap().to_string(),
        ],
        &mut out,
    );
    assert_eq!(code, cli::ExitCode::Success);
    (net, prop)
}

/// Starts the daemon process and waits until it is accepting. A stale
/// socket file from a SIGKILLed predecessor is removed first, so the
/// wait below observes the *new* process's bind.
fn spawn_daemon(sock: &Path, journal: &Path, extra: &[&str]) -> Child {
    let _ = std::fs::remove_file(sock);
    let mut cmd = Command::new(BIN);
    cmd.args([
        "serve",
        "--addr",
        sock.to_str().unwrap(),
        "--workers",
        "1",
        "--journal",
        journal.to_str().unwrap(),
    ])
    .args(extra)
    .stdout(Stdio::null())
    .stderr(Stdio::null());
    let child = cmd.spawn().expect("spawn daemon");
    let deadline = Instant::now() + Duration::from_secs(20);
    while !sock.exists() {
        assert!(Instant::now() < deadline, "daemon never bound {sock:?}");
        std::thread::sleep(Duration::from_millis(5));
    }
    child
}

/// Spawns a `submit` child for the given job id with a generous retry
/// budget, so it rides out a daemon restart.
fn spawn_submit(sock: &Path, net: &Path, prop: &Path, id: u64) -> Child {
    Command::new(BIN)
        .args([
            "submit",
            "--addr",
            sock.to_str().unwrap(),
            "--network",
            net.to_str().unwrap(),
            "--property",
            prop.to_str().unwrap(),
            "--id",
            &id.to_string(),
            "--retries",
            "10",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn submit")
}

fn finish(child: Child) -> (i32, String) {
    let output = child.wait_with_output().expect("wait for child");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    (output.status.code().unwrap_or(-1), text)
}

/// One-shot control request through the real binary.
fn control(sock: &Path, args: &[&str]) -> (i32, String) {
    let child = Command::new(BIN)
        .args(["submit", "--addr", sock.to_str().unwrap()])
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn control");
    finish(child)
}

#[test]
fn sigkill_mid_stream_then_restart_loses_and_duplicates_nothing() {
    let dir = unique_dir("sigkill");
    let (net, prop) = example_files(&dir);
    let sock = dir.join("daemon.sock");
    let journal = dir.join("daemon.wal");

    let mut daemon = spawn_daemon(&sock, &journal, &[]);

    // A stream of submissions; the daemon dies somewhere in the middle
    // of serving them.
    let ids = [11u64, 12, 13, 14];
    let clients: Vec<Child> = ids
        .iter()
        .map(|id| spawn_submit(&sock, &net, &prop, *id))
        .collect();
    std::thread::sleep(Duration::from_millis(40));

    daemon.kill().expect("SIGKILL daemon");
    daemon.wait().expect("reap daemon");

    // Crash-only restart: same journal, same socket. The clients keep
    // retrying with backoff and must all land on the new process.
    let mut daemon = spawn_daemon(&sock, &journal, &[]);

    for (client, id) in clients.into_iter().zip(ids) {
        let (code, output) = finish(client);
        assert_eq!(code, 0, "job {id} must verify across the restart: {output}");
        assert!(output.contains("verified"), "job {id}: {output}");
    }

    // Every id must resolve to exactly one stored verdict — query is
    // idempotent and must agree with what the clients saw.
    for id in ids {
        let (code, output) = control(&sock, &["--query", &id.to_string()]);
        assert_eq!(code, 0, "query {id}: {output}");
        assert!(output.contains("verified"), "query {id}: {output}");
    }

    let (code, output) = control(&sock, &["--stats"]);
    assert_eq!(code, 0, "stats: {output}");
    assert!(output.contains("journal_enabled: 1"), "stats: {output}");

    let (code, output) = control(&sock, &["--drain"]);
    assert_eq!(code, 0, "drain must report lost=0: {output}");
    assert!(output.contains("lost=0"), "drain: {output}");
    daemon.wait().expect("daemon exits after drain");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn poison_job_is_quarantined_with_exit_code_70() {
    let dir = unique_dir("poison");
    let (net, prop) = example_files(&dir);
    let sock = dir.join("daemon.sock");
    let journal = dir.join("daemon.wal");

    // Job 7 panics every worker that picks it up; the retry budget
    // turns that into a quarantine instead of a crash loop.
    let mut daemon = spawn_daemon(&sock, &journal, &["--fault-kill-job", "7"]);

    let (code, output) = finish(spawn_submit(&sock, &net, &prop, 7));
    assert_eq!(code, 70, "poison job must exit EX_SOFTWARE: {output}");
    assert!(output.contains("poisoned"), "output: {output}");
    assert!(output.contains("injected worker kill"), "output: {output}");

    // The daemon survived both worker deaths: a healthy job still runs.
    let (code, output) = finish(spawn_submit(&sock, &net, &prop, 8));
    assert_eq!(code, 0, "healthy job after quarantine: {output}");
    assert!(output.contains("verified"), "output: {output}");

    let (code, output) = control(&sock, &["--drain"]);
    assert_eq!(code, 0, "drain: {output}");
    assert!(output.contains("lost=0"), "drain: {output}");
    daemon.wait().expect("daemon exits after drain");
    let _ = std::fs::remove_dir_all(dir);
}
