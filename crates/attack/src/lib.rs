//! Gradient-based adversarial counterexample search.
//!
//! Implements the optimization side of the paper (§3): minimizing the
//! robustness objective `F(x) = N(x)_K - max_{j != K} N(x)_j` (Eq. 2) over
//! an input region using projected gradient descent ([`pgd`]) with random
//! restarts ([`Minimizer`]), plus the fast gradient sign method
//! ([`fgsm_step`]) as a cheap alternative direction.
//!
//! A point with `F(x) <= 0` is a true adversarial counterexample; points
//! with `F(x) <= δ` are the δ-counterexamples of Definition 5.3.
//!
//! # API invariants
//!
//! * [`Minimizer::minimize`] always returns a point inside the given
//!   region (every step is projected back onto the box), and never
//!   reports an objective it did not evaluate at that point.
//! * The search is deterministic for a fixed seed and restart count.
//! * The minimizer itself does not filter non-finite objectives; the
//!   verifier treats a NaN objective as a poisoned attack (never as a
//!   refutation) and falls back to abstraction — see the failure model
//!   in the `charon` crate docs.
//! * [`Minimizer::minimize_traced`] is the observability twin of
//!   `minimize`: identical search, plus one [`PhaseStat`] per phase
//!   (center probe, FGSM, coordinate descent, PGD restarts) with
//!   evaluation counts, best objective, and wall time. The untraced path
//!   reads no clocks.
//!
//! # Examples
//!
//! ```
//! use attack::Minimizer;
//! use domains::Bounds;
//! use nn::samples;
//!
//! let net = samples::example_2_2_network();
//! // On [-1, 2] the property "class 1" is falsifiable (N(2) = [8, 6]).
//! let region = Bounds::new(vec![-1.0], vec![2.0]);
//! let result = Minimizer::new(1).with_restarts(8).minimize(&net, &region, 1);
//! assert!(result.objective <= 0.0, "PGD should find the violation");
//! ```

use domains::Bounds;
use nn::Network;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Matrix;

/// Replaces a NaN objective value with `+∞` so it can never be accepted
/// as a best-so-far or trip a `<= δ` refutation check. Networks with
/// poisoned parameters evaluate to NaN everywhere; the sentinel makes
/// every optimizer in this crate report "attack found nothing" instead
/// of returning a NaN that compares false with everything downstream.
fn sanitize_objective(f: f64) -> f64 {
    if f.is_nan() {
        f64::INFINITY
    } else {
        f
    }
}

/// Whether a gradient is usable for a descent step. Non-finite entries
/// (NaN or ±∞ from poisoned numerics) would teleport the iterate out of
/// the region or poison it outright.
fn gradient_is_finite(g: &[f64]) -> bool {
    g.iter().all(|v| v.is_finite())
}

/// Result of an optimization run: the best point found and its objective
/// value.
#[derive(Debug, Clone)]
pub struct AttackResult {
    /// The minimizing point `x*` (always inside the search region).
    pub point: Vec<f64>,
    /// The objective value `F(x*)`.
    pub objective: f64,
    /// Number of gradient evaluations performed.
    pub evals: usize,
}

/// Configuration for projected gradient descent.
#[derive(Debug, Clone)]
pub struct PgdConfig {
    /// Number of gradient steps per run.
    pub steps: usize,
    /// Initial step size as a fraction of the mean region width.
    pub step_fraction: f64,
    /// Multiplicative step decay applied when a step fails to improve.
    pub decay: f64,
}

impl Default for PgdConfig {
    fn default() -> Self {
        PgdConfig {
            steps: 60,
            step_fraction: 0.25,
            decay: 0.7,
        }
    }
}

/// Runs projected gradient descent on the robustness objective from a
/// given starting point, returning the best point visited.
///
/// Early-exits as soon as the objective becomes non-positive (a true
/// counterexample has been found).
///
/// # Panics
///
/// Panics if `start` is not inside `region`, or dimensions mismatch.
pub fn pgd(
    net: &Network,
    region: &Bounds,
    target: usize,
    start: &[f64],
    config: &PgdConfig,
) -> AttackResult {
    assert!(region.contains(start), "start point must lie in the region");
    let mut x = start.to_vec();
    let mut best = x.clone();
    let mut best_f = sanitize_objective(net.objective(&x, target));
    let mut evals = 1;
    let mut step = config.step_fraction * region.mean_width().max(1e-12);

    for _ in 0..config.steps {
        if best_f <= 0.0 {
            break;
        }
        let g = net.objective_gradient(&x, target);
        evals += 1;
        if !gradient_is_finite(&g) {
            break;
        }
        let norm = tensor::ops::norm2(&g);
        if norm < 1e-12 {
            break;
        }
        // Descend: x <- Proj(x - step * g / |g|)
        for (xi, gi) in x.iter_mut().zip(g.iter()) {
            *xi -= step * gi / norm;
        }
        region.clamp(&mut x);
        let f = sanitize_objective(net.objective(&x, target));
        evals += 1;
        if f < best_f {
            best_f = f;
            best = x.clone();
        } else {
            step *= config.decay;
            if step < 1e-12 {
                break;
            }
        }
    }
    AttackResult {
        point: best,
        objective: best_f,
        evals,
    }
}

/// Projected gradient descent with momentum: accumulates a velocity
/// vector, which helps cross shallow saddle regions of the piecewise
/// linear objective that plain PGD stalls on.
///
/// Early-exits as soon as the objective becomes non-positive.
///
/// # Panics
///
/// Panics if `start` is not inside `region`.
pub fn pgd_momentum(
    net: &Network,
    region: &Bounds,
    target: usize,
    start: &[f64],
    config: &PgdConfig,
    momentum: f64,
) -> AttackResult {
    assert!(region.contains(start), "start point must lie in the region");
    assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
    let mut x = start.to_vec();
    let mut velocity = vec![0.0; x.len()];
    let mut best = x.clone();
    let mut best_f = sanitize_objective(net.objective(&x, target));
    let mut evals = 1;
    let step = config.step_fraction * region.mean_width().max(1e-12);

    for _ in 0..config.steps {
        if best_f <= 0.0 {
            break;
        }
        let g = net.objective_gradient(&x, target);
        evals += 1;
        if !gradient_is_finite(&g) {
            break;
        }
        let norm = tensor::ops::norm2(&g);
        if norm < 1e-12 && tensor::ops::norm2(&velocity) < 1e-12 {
            break;
        }
        for ((vi, gi), xi) in velocity.iter_mut().zip(g.iter()).zip(x.iter_mut()) {
            *vi = momentum * *vi - step * gi / norm.max(1e-12);
            *xi += *vi;
        }
        region.clamp(&mut x);
        let f = sanitize_objective(net.objective(&x, target));
        evals += 1;
        if f < best_f {
            best_f = f;
            best = x.clone();
        }
    }
    AttackResult {
        point: best,
        objective: best_f,
        evals,
    }
}

/// Greedy coordinate descent: repeatedly moves single coordinates to
/// whichever region boundary decreases the objective most. Effective on
/// brightening-attack regions, where most coordinates are frozen and the
/// optimum tends to sit on a corner of the free sub-box.
///
/// # Panics
///
/// Panics if `start` is not inside `region`.
pub fn coordinate_descent(
    net: &Network,
    region: &Bounds,
    target: usize,
    start: &[f64],
    sweeps: usize,
) -> AttackResult {
    assert!(region.contains(start), "start point must lie in the region");
    let mut x = start.to_vec();
    let mut best_f = sanitize_objective(net.objective(&x, target));
    let mut evals = 1;
    let free: Vec<usize> = region
        .widths()
        .iter()
        .enumerate()
        .filter(|(_, w)| **w > 0.0)
        .map(|(i, _)| i)
        .collect();

    for _ in 0..sweeps {
        if best_f <= 0.0 {
            break;
        }
        let mut improved = false;
        for &i in &free {
            let original = x[i];
            let mut local_best = best_f;
            let mut local_val = original;
            for candidate in [region.lower()[i], region.upper()[i]] {
                if candidate == original {
                    continue;
                }
                x[i] = candidate;
                let f = sanitize_objective(net.objective(&x, target));
                evals += 1;
                if f < local_best {
                    local_best = f;
                    local_val = candidate;
                }
            }
            x[i] = local_val;
            if local_best < best_f {
                best_f = local_best;
                improved = true;
            }
            if best_f <= 0.0 {
                break;
            }
        }
        if !improved {
            break;
        }
    }
    AttackResult {
        point: x,
        objective: best_f,
        evals,
    }
}

/// Projected gradient descent on a batch of starting points in lockstep.
///
/// Each row of `starts` is one restart. Every descent iteration evaluates
/// the whole batch with one blocked forward/backward pass
/// ([`Network::objective_gradient_batch`]) instead of one matrix-vector
/// product per point per layer, so the per-layer weight matrix is read
/// once per iteration for all restarts. Rows retire independently (zero or
/// poisoned gradient, step underflow), and the whole batch stops as soon
/// as any row reaches a non-positive objective — matching the sequential
/// restart loop, which never ran later restarts after a success.
///
/// Returns the best point across all rows (earliest row wins ties).
///
/// # Panics
///
/// Panics if any row of `starts` lies outside `region`, or dimensions
/// mismatch.
pub fn pgd_batch(
    net: &Network,
    region: &Bounds,
    target: usize,
    starts: &Matrix,
    config: &PgdConfig,
) -> AttackResult {
    assert!(starts.rows() > 0, "batch must contain at least one start");
    for start in starts.rows_iter() {
        assert!(region.contains(start), "start point must lie in the region");
    }
    let n = starts.cols();
    let base_step = config.step_fraction * region.mean_width().max(1e-12);

    let mut xs = starts.clone();
    let mut best = starts.clone();
    let mut best_f: Vec<f64> = net
        .objective_batch(&xs, target)
        .into_iter()
        .map(sanitize_objective)
        .collect();
    let mut evals = starts.rows();
    let mut step = vec![base_step; starts.rows()];
    let mut active = vec![true; starts.rows()];

    'outer: for _ in 0..config.steps {
        if best_f.iter().any(|f| *f <= 0.0) {
            break;
        }
        // Compact the live rows so retired restarts stop consuming
        // kernel work, then scatter the results back by row id.
        let live: Vec<usize> = (0..xs.rows()).filter(|&r| active[r]).collect();
        if live.is_empty() {
            break;
        }
        let mut packed = Matrix::zeros(0, n);
        for &r in &live {
            packed.push_row(xs.row(r));
        }
        let gs = net.objective_gradient_batch(&packed, target);
        evals += live.len();
        for ((&r, g), x) in live.iter().zip(gs.rows_iter()).zip(packed.rows_iter_mut()) {
            if !gradient_is_finite(g) {
                active[r] = false;
                continue;
            }
            let norm = tensor::ops::norm2(g);
            if norm < 1e-12 {
                active[r] = false;
                continue;
            }
            for (xi, gi) in x.iter_mut().zip(g.iter()) {
                *xi -= step[r] * gi / norm;
            }
            region.clamp(x);
            xs.row_mut(r).copy_from_slice(x);
        }
        let fs = net.objective_batch(&packed, target);
        for (&r, f) in live.iter().zip(fs.iter()) {
            if !active[r] {
                continue;
            }
            evals += 1;
            let f = sanitize_objective(*f);
            if f < best_f[r] {
                best_f[r] = f;
                best.row_mut(r).copy_from_slice(xs.row(r));
                if f <= 0.0 {
                    break 'outer;
                }
            } else {
                step[r] *= config.decay;
                if step[r] < 1e-12 {
                    active[r] = false;
                }
            }
        }
    }

    let winner = (0..best_f.len())
        .reduce(|a, b| if best_f[b] < best_f[a] { b } else { a })
        .expect("batch is non-empty");
    AttackResult {
        point: best.row(winner).to_vec(),
        objective: best_f[winner],
        evals,
    }
}

/// One fast-gradient-sign step from `start`: moves to the corner of the
/// region indicated by the sign of the objective gradient.
///
/// # Panics
///
/// Panics if `start` is not inside `region`.
pub fn fgsm_step(net: &Network, region: &Bounds, target: usize, start: &[f64]) -> Vec<f64> {
    assert!(region.contains(start), "start point must lie in the region");
    let g = net.objective_gradient(start, target);
    if !gradient_is_finite(&g) {
        // A poisoned gradient gives no usable direction; stay put.
        return start.to_vec();
    }
    let mut x: Vec<f64> = start
        .iter()
        .zip(g.iter())
        .zip(region.widths().iter())
        .map(|((xi, gi), w)| xi - w * gi.signum())
        .collect();
    region.clamp(&mut x);
    x
}

/// Timing and outcome of one attack phase inside
/// [`Minimizer::minimize_traced`].
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Phase name: `center`, `fgsm`, `coordinate`, or `restarts`.
    pub phase: &'static str,
    /// Gradient/objective evaluations this phase contributed.
    pub evals: usize,
    /// Best objective over the whole minimization *after* this phase.
    pub best_objective: f64,
    /// Wall-clock seconds of this phase.
    pub seconds: f64,
}

/// Per-phase statistics of one traced minimization run.
///
/// A minimization that early-exits on a found counterexample records
/// only the phases that actually ran.
#[derive(Debug, Clone, Default)]
pub struct MinimizeTrace {
    /// The phases that ran, in execution order.
    pub phases: Vec<PhaseStat>,
}

/// Multi-restart minimizer for the robustness objective (the `Minimize`
/// call at line 2 of Algorithm 1).
///
/// Runs PGD from the region center and from a number of random starting
/// points (plus one FGSM-seeded run), keeping the best result.
#[derive(Debug, Clone)]
pub struct Minimizer {
    /// PGD configuration shared by all restarts.
    pub config: PgdConfig,
    /// Number of random restarts in addition to the center start.
    pub restarts: usize,
    seed: u64,
}

impl Minimizer {
    /// Creates a minimizer with default configuration and the given RNG
    /// seed.
    pub fn new(seed: u64) -> Self {
        Minimizer {
            config: PgdConfig::default(),
            restarts: 3,
            seed,
        }
    }

    /// Sets the number of random restarts.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts;
        self
    }

    /// Sets the PGD configuration.
    pub fn with_config(mut self, config: PgdConfig) -> Self {
        self.config = config;
        self
    }

    /// Minimizes `F` over `region`, returning the best point found.
    ///
    /// If the network evaluates to NaN on every visited point (poisoned
    /// parameters), the returned objective is `+∞` — a sentinel meaning
    /// "the attack could not evaluate the network", which no δ-check can
    /// mistake for a refutation.
    ///
    /// # Panics
    ///
    /// Panics if `region.dim() != net.input_dim()` or `target` is out of
    /// range.
    pub fn minimize(&self, net: &Network, region: &Bounds, target: usize) -> AttackResult {
        self.minimize_impl(net, region, target, None)
    }

    /// [`Minimizer::minimize`], additionally returning per-phase timing
    /// and evaluation counts.
    ///
    /// The untraced [`Minimizer::minimize`] path performs no clock reads;
    /// use it when the statistics are not needed.
    ///
    /// # Panics
    ///
    /// As [`Minimizer::minimize`].
    pub fn minimize_traced(
        &self,
        net: &Network,
        region: &Bounds,
        target: usize,
    ) -> (AttackResult, MinimizeTrace) {
        let mut trace = MinimizeTrace::default();
        let result = self.minimize_impl(net, region, target, Some(&mut trace));
        (result, trace)
    }

    /// Shared phase driver: `trace = None` is the production path (no
    /// `Instant` reads), `Some` records a [`PhaseStat`] per phase run.
    fn minimize_impl(
        &self,
        net: &Network,
        region: &Bounds,
        target: usize,
        mut trace: Option<&mut MinimizeTrace>,
    ) -> AttackResult {
        use std::time::Instant;
        let mut phase_start = trace.as_ref().map(|_| Instant::now());
        // Appends one phase row and restarts the phase clock (tracing
        // runs only; a no-op otherwise).
        let record = |trace: &mut Option<&mut MinimizeTrace>,
                      phase_start: &mut Option<Instant>,
                      phase: &'static str,
                      evals: usize,
                      best_objective: f64| {
            if let Some(t) = trace.as_deref_mut() {
                let start = phase_start.expect("phase clock runs while tracing");
                t.phases.push(PhaseStat {
                    phase,
                    evals,
                    best_objective,
                    seconds: start.elapsed().as_secs_f64(),
                });
                *phase_start = Some(Instant::now());
            }
        };

        let mut rng = StdRng::seed_from_u64(self.seed);
        let center = region.center();
        let mut best = pgd(net, region, target, &center, &self.config);
        record(&mut trace, &mut phase_start, "center", best.evals, best.objective);
        if best.objective <= 0.0 {
            return best;
        }

        // FGSM-seeded run: jump to the steepest corner, then refine.
        let corner = fgsm_step(net, region, target, &center);
        let run = pgd(net, region, target, &corner, &self.config);
        let before = best.evals;
        best = merge(best, run);
        record(&mut trace, &mut phase_start, "fgsm", best.evals - before, best.objective);
        if best.objective <= 0.0 {
            return best;
        }

        // One coordinate-descent pass: box-shaped regions (like the
        // brightening attacks of §7.1) often hide their minima in
        // corners that gradient steps orbit around.
        let run = coordinate_descent(net, region, target, &center, 2);
        let before = best.evals;
        best = merge(best, run);
        record(&mut trace, &mut phase_start, "coordinate", best.evals - before, best.objective);
        if best.objective <= 0.0 {
            return best;
        }

        // Random restarts run as one lockstep batch: a single blocked
        // forward/backward per descent iteration covers every restart.
        if self.restarts > 0 {
            let mut starts = Matrix::zeros(0, region.dim());
            for _ in 0..self.restarts {
                starts.push_row(&region.sample(&mut rng));
            }
            let run = pgd_batch(net, region, target, &starts, &self.config);
            let before = best.evals;
            best = merge(best, run);
            record(&mut trace, &mut phase_start, "restarts", best.evals - before, best.objective);
        }
        best
    }
}

fn merge(a: AttackResult, b: AttackResult) -> AttackResult {
    let evals = a.evals + b.evals;
    let mut best = if b.objective < a.objective { b } else { a };
    best.evals = evals;
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use nn::samples;

    #[test]
    fn finds_counterexample_on_falsifiable_region() {
        let net = samples::example_2_2_network();
        let region = Bounds::new(vec![-1.0], vec![2.0]);
        let result = Minimizer::new(1).minimize(&net, &region, 1);
        assert!(result.objective <= 0.0);
        assert!(region.contains(&result.point));
        // The found point really is misclassified.
        assert_ne!(net.classify(&result.point), 1);
    }

    #[test]
    fn reports_positive_objective_on_robust_region() {
        let net = samples::example_2_2_network();
        let region = Bounds::new(vec![-1.0], vec![1.0]);
        let result = Minimizer::new(2).minimize(&net, &region, 1);
        assert!(
            result.objective > 0.0,
            "region is robust; F must stay positive"
        );
        assert!(region.contains(&result.point));
    }

    #[test]
    fn xor_property_resists_attack() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]);
        let result = Minimizer::new(3)
            .with_restarts(5)
            .minimize(&net, &region, 1);
        assert!(result.objective > 0.0);
    }

    #[test]
    fn xor_falsified_on_wider_region() {
        let net = samples::xor_network();
        // [0, 1]^2 contains [0,0] and [1,1], both class 0.
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let result = Minimizer::new(4)
            .with_restarts(5)
            .minimize(&net, &region, 1);
        assert!(result.objective <= 0.0);
        assert_ne!(net.classify(&result.point), 1);
    }

    #[test]
    fn pgd_point_stays_in_region() {
        let net = nn::train::random_mlp(4, &[10], 3, 17);
        let region = Bounds::linf_ball(&[0.2, -0.1, 0.0, 0.5], 0.3, None);
        let result = Minimizer::new(5).minimize(&net, &region, 0);
        assert!(region.contains(&result.point));
        assert_eq!(result.objective, net.objective(&result.point, 0));
    }

    #[test]
    fn fgsm_step_moves_to_region() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let x = fgsm_step(&net, &region, 1, &region.center());
        assert!(region.contains(&x));
    }

    #[test]
    fn momentum_pgd_finds_xor_violation() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        // Start near a violating corner basin.
        let result = pgd_momentum(&net, &region, 1, &[0.8, 0.8], &PgdConfig::default(), 0.8);
        assert!(result.objective <= 0.0, "objective {}", result.objective);
        assert!(region.contains(&result.point));
    }

    #[test]
    fn momentum_result_objective_is_consistent() {
        let net = nn::train::random_mlp(3, &[8], 3, 2);
        let region = Bounds::linf_ball(&[0.1, 0.0, -0.1], 0.4, None);
        let result = pgd_momentum(
            &net,
            &region,
            0,
            &region.center(),
            &PgdConfig::default(),
            0.5,
        );
        assert_eq!(result.objective, net.objective(&result.point, 0));
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn momentum_out_of_range_panics() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        pgd_momentum(&net, &region, 1, &[0.5, 0.5], &PgdConfig::default(), 1.5);
    }

    #[test]
    fn coordinate_descent_reaches_corner_violation() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let result = coordinate_descent(&net, &region, 1, &[0.5, 0.5], 5);
        // The corners (0,0) and (1,1) violate; coordinate moves reach one.
        assert!(result.objective <= 0.0, "objective {}", result.objective);
    }

    #[test]
    fn coordinate_descent_respects_frozen_dims() {
        let net = samples::xor_network();
        // Freeze x1 at 0.6: only x0 may move.
        let region = Bounds::new(vec![0.0, 0.6], vec![1.0, 0.6]);
        let result = coordinate_descent(&net, &region, 1, &[0.5, 0.6], 5);
        assert_eq!(result.point[1], 0.6);
        assert!(region.contains(&result.point));
    }

    #[test]
    fn minimizer_is_deterministic() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.1, 0.1], vec![0.9, 0.9]);
        let a = Minimizer::new(9).minimize(&net, &region, 1);
        let b = Minimizer::new(9).minimize(&net, &region, 1);
        assert_eq!(a.point, b.point);
        assert_eq!(a.objective, b.objective);
    }

    fn poisoned_network() -> Network {
        // A single affine layer with a NaN weight: every evaluation and
        // every gradient of this network is NaN.
        Network::new(
            1,
            vec![nn::Layer::Affine(nn::AffineLayer::new(
                tensor::Matrix::from_rows(&[&[f64::NAN], &[1.0]]),
                vec![0.0, 0.0],
            ))],
        )
        .unwrap()
    }

    #[test]
    fn poisoned_network_reports_infinite_objective_not_nan() {
        let net = poisoned_network();
        let region = Bounds::new(vec![0.0], vec![1.0]);
        let result = Minimizer::new(1).with_restarts(2).minimize(&net, &region, 0);
        assert!(
            result.objective.is_infinite() && result.objective > 0.0,
            "poisoned objective must surface as +inf, got {}",
            result.objective
        );
        assert!(region.contains(&result.point));
        assert!(result.point.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn fgsm_stays_put_on_poisoned_gradient() {
        let net = poisoned_network();
        let region = Bounds::new(vec![0.0], vec![1.0]);
        let x = fgsm_step(&net, &region, 0, &[0.25]);
        assert_eq!(x, vec![0.25]);
    }

    #[test]
    fn batched_pgd_agrees_with_sequential_per_start() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.05, 0.05], vec![0.95, 0.95]);
        let starts = [
            vec![0.1, 0.2],
            vec![0.8, 0.85],
            vec![0.5, 0.4],
            vec![0.25, 0.9],
        ];
        let rows: Vec<&[f64]> = starts.iter().map(Vec::as_slice).collect();
        let batch = pgd_batch(
            &net,
            &region,
            1,
            &tensor::Matrix::from_rows(&rows),
            &PgdConfig::default(),
        );
        // The batch's best can only match or beat every individual
        // sequential run it subsumes (it stops early once any row finds a
        // violation, which only happens when a sequential run would too).
        let sequential_best = starts
            .iter()
            .map(|s| pgd(&net, &region, 1, s, &PgdConfig::default()).objective)
            .fold(f64::INFINITY, f64::min);
        assert!(region.contains(&batch.point));
        assert_eq!(batch.objective, net.objective(&batch.point, 1));
        if sequential_best <= 0.0 {
            assert!(batch.objective <= 0.0);
        }
    }

    #[test]
    fn batched_pgd_single_row_matches_plain_pgd() {
        let net = samples::xor_network();
        let region = Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]);
        let start = [0.8, 0.8];
        let plain = pgd(&net, &region, 1, &start, &PgdConfig::default());
        let batch = pgd_batch(
            &net,
            &region,
            1,
            &tensor::Matrix::from_rows(&[&start]),
            &PgdConfig::default(),
        );
        assert_eq!(batch.point, plain.point);
        assert_eq!(batch.objective, plain.objective);
    }

    #[test]
    fn batched_pgd_poisoned_network_reports_infinity() {
        let net = poisoned_network();
        let region = Bounds::new(vec![0.0], vec![1.0]);
        let batch = pgd_batch(
            &net,
            &region,
            0,
            &tensor::Matrix::from_rows(&[&[0.25], &[0.75]]),
            &PgdConfig::default(),
        );
        assert!(batch.objective.is_infinite() && batch.objective > 0.0);
        assert!(batch.point.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn degenerate_point_region() {
        let net = samples::xor_network();
        let region = Bounds::point(&[0.5, 0.5]);
        let result = Minimizer::new(11).minimize(&net, &region, 1);
        assert_eq!(result.point, vec![0.5, 0.5]);
    }
}
