//! Umbrella crate for the Charon reproduction workspace.
//!
//! This crate re-exports the member crates so downstream users can depend
//! on a single package, and hosts the repository-level integration tests
//! (`tests/`) and runnable examples (`examples/`).
//!
//! See the README for an overview and `DESIGN.md` for the system
//! inventory.
//!
//! # Examples
//!
//! ```
//! use charon_repro::prelude::*;
//!
//! let net = nn::samples::xor_network();
//! let property = RobustnessProperty::new(
//!     Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]),
//!     1,
//! );
//! assert!(Verifier::default().verify(&net, &property).is_verified());
//! ```

pub use attack;
pub use baselines;
pub use bayesopt;
pub use charon;
pub use complete;
pub use data;
pub use domains;
pub use lp;
pub use nn;
pub use tensor;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use charon::{RobustnessProperty, Verdict, Verifier, VerifierConfig};
    pub use domains::{AbstractElement, Bounds, DomainChoice};
    pub use nn::Network;
}
