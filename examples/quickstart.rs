//! Quickstart: verify and refute robustness of the paper's XOR network.
//!
//! Run with `cargo run --example quickstart`.

use charon::{RobustnessProperty, Verdict, Verifier};
use domains::Bounds;
use nn::samples;

fn main() {
    // The XOR network from Figure 3 of the paper.
    let net = samples::xor_network();
    println!(
        "XOR network: {} inputs, {} classes",
        net.input_dim(),
        net.output_dim()
    );
    for input in [[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]] {
        println!("  classify({input:?}) = {}", net.classify(&input));
    }

    let verifier = Verifier::default();

    // Example 3.1: all inputs in [0.3, 0.7]^2 must be classified 1.
    let robust = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    match verifier.verify(&net, &robust) {
        Verdict::Verified => println!("\n[0.3, 0.7]^2 -> class 1: VERIFIED (as in Example 3.1)"),
        other => println!("\nunexpected verdict: {other:?}"),
    }

    // The full unit square contains [0,0] and [1,1], which are class 0:
    // the property is falsifiable and Charon finds a counterexample.
    let broken = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
    match verifier.verify(&net, &broken) {
        Verdict::Refuted(cex) => {
            println!(
                "[0, 1]^2 -> class 1: REFUTED by x* = [{:.3}, {:.3}] (classified {})",
                cex.point[0],
                cex.point[1],
                net.classify(&cex.point)
            );
        }
        other => println!("unexpected verdict: {other:?}"),
    }

    // Detailed statistics for the verified property.
    let (verdict, stats) = verifier.verify_with_stats(&net, &robust);
    println!(
        "\nstats: verdict={verdict:?}, regions={}, splits={}, analyze_calls={}, domains={:?}",
        stats.regions, stats.splits, stats.analyze_calls, stats.domain_uses
    );
}
