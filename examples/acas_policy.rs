//! Policy learning on ACAS-Xu-like collision-avoidance properties (§6).
//!
//! Trains the synthetic collision-avoidance network, learns a
//! verification policy on its 12 training properties via Bayesian
//! optimization, and deploys the learned policy on fresh properties.
//!
//! Run with `cargo run --release --example acas_policy`.

use std::sync::Arc;
use std::time::Duration;

use charon::train::{train_policy, TrainConfig};
use charon::{RobustnessProperty, Verifier};
use domains::Bounds;

fn main() {
    println!("training the ACAS-like advisory network ...");
    let (net, accuracy) = data::acas::build_network(0);
    println!("advisory accuracy: {accuracy:.2}");

    let problems = data::acas::training_properties(&net, 0);
    println!("policy-training corpus: {} properties", problems.len());

    let config = TrainConfig {
        time_limit: Duration::from_millis(300),
        ..TrainConfig::default()
    };
    println!("running Bayesian optimization over policy parameters ...");
    let outcome = train_policy(&problems, &config);
    println!(
        "learned policy score: {:.3}s (default policy: {:.3}s, {} evaluations)",
        outcome.score, outcome.baseline_score, outcome.evaluations
    );

    // Deploy on properties not seen during training.
    let verifier = Verifier::with_policy(Arc::new(outcome.policy));
    println!("\ndeploying on unseen properties:");
    for (i, center) in [
        vec![0.9, 0.5, 0.5, 0.3, 0.3],  // far away: clear of conflict
        vec![0.15, 0.2, 0.5, 0.8, 0.8], // close on the left
        vec![0.5, 0.5, 0.5, 0.5, 0.5],  // boundary region
    ]
    .into_iter()
    .enumerate()
    {
        let advisory = net.classify(&center);
        let property =
            RobustnessProperty::new(Bounds::linf_ball(&center, 0.03, Some((0.0, 1.0))), advisory);
        let verdict = verifier.verify(&net, &property);
        println!(
            "  property {i}: advisory {advisory} stable on +-0.03 ball: {:?}",
            verdict
        );
    }
}
