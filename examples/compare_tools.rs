//! Head-to-head: Charon vs AI2 vs ReluVal vs Reluplex on one property.
//!
//! Run with `cargo run --release --example compare_tools`.

use std::time::{Duration, Instant};

use baselines::ai2::Ai2;
use baselines::reluplex::Reluplex;
use baselines::reluval::ReluVal;
use charon::{RobustnessProperty, Verdict, Verifier};
use domains::Bounds;

fn main() {
    // A small trained network and a moderately hard property.
    let (net, _) = data::zoo::build(
        data::zoo::ZooNetwork::Mnist3x32,
        &data::zoo::ZooConfig::default(),
    );
    let eval = data::zoo::ZooNetwork::Mnist3x32.dataset(50, 555);
    let image = &eval.images[0];
    let property = RobustnessProperty::new(
        data::properties::brightening_region(image, 0.75),
        net.classify(image),
    );
    let region: &Bounds = property.region();
    println!(
        "property: brightening attack, {} free pixels, target class {}",
        region.widths().iter().filter(|w| **w > 0.0).count(),
        property.target()
    );

    let timeout = Duration::from_secs(10);

    let t = Instant::now();
    let charon = match Verifier::default().verify(&net, &property) {
        Verdict::Verified => "verified".to_string(),
        Verdict::Refuted(c) => format!("falsified (F = {:.4})", c.objective),
        Verdict::ResourceLimit => "timeout".to_string(),
    };
    println!("  {:<14} {:<28} {:?}", "Charon", charon, t.elapsed());

    let t = Instant::now();
    let v = Ai2::zonotope().analyze(&net, &property, timeout);
    println!(
        "  {:<14} {:<28} {:?}",
        "AI2-Zonotope",
        v.to_string(),
        t.elapsed()
    );

    let t = Instant::now();
    let v = Ai2::bounded64().analyze(&net, &property, timeout);
    println!(
        "  {:<14} {:<28} {:?}",
        "AI2-Bounded64",
        v.to_string(),
        t.elapsed()
    );

    let t = Instant::now();
    let v = ReluVal::default().analyze(&net, &property, timeout);
    println!(
        "  {:<14} {:<28} {:?}",
        "ReluVal",
        v.to_string(),
        t.elapsed()
    );

    let t = Instant::now();
    let v = Reluplex::default().analyze(&net, &property, timeout);
    println!(
        "  {:<14} {:<28} {:?}",
        "Reluplex",
        v.to_string(),
        t.elapsed()
    );
}
