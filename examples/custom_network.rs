//! Building a network by hand, saving it, and verifying robustness
//! through both the library API and the CLI file formats.
//!
//! Run with `cargo run --example custom_network`.

use charon::{RobustnessProperty, Verdict, Verifier};
use domains::deeppoly::DeepPoly;
use domains::{propagate, AbstractElement, Bounds, Zonotope};
use nn::{AffineLayer, Layer, Network};
use tensor::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A hand-written 2-4-3 classifier that carves the plane into three
    // angular sectors.
    let net = Network::new(
        2,
        vec![
            Layer::Affine(AffineLayer::new(
                Matrix::from_rows(&[&[1.0, 0.4], &[-0.8, 1.0], &[0.3, -1.2], &[-1.0, -1.0]]),
                vec![0.1, 0.0, 0.2, -0.1],
            )),
            Layer::Relu,
            Layer::Affine(AffineLayer::new(
                Matrix::from_rows(&[
                    &[1.2, -0.3, 0.1, -0.8],
                    &[-0.5, 1.1, -0.2, 0.3],
                    &[0.0, -0.4, 1.3, 0.6],
                ]),
                vec![0.0, 0.0, 0.0],
            )),
        ],
    )?;

    let x = [0.8, 0.2];
    let class = net.classify(&x);
    println!("network classifies {x:?} as class {class}");

    // Compare what different abstract domains see on a small ball.
    let region = Bounds::linf_ball(&x, 0.1, None);
    let zonotope_margin = propagate(&net, Zonotope::from_bounds(&region)).margin_lower_bound(class);
    let deeppoly_margin = DeepPoly::analyze(&net, &region).margin_lower_bound(class);
    println!("zonotope margin bound: {zonotope_margin:.4}");
    println!("deeppoly margin bound: {deeppoly_margin:.4}");

    // Full verification with Charon.
    let property = RobustnessProperty::new(region, class);
    match Verifier::default().verify(&net, &property) {
        Verdict::Verified => println!("Charon: verified"),
        Verdict::Refuted(cex) => println!("Charon: refuted at {:?}", cex.point),
        Verdict::ResourceLimit => println!("Charon: resource limit"),
    }

    // Save both artifacts in the CLI formats.
    let dir = std::env::temp_dir().join("charon-custom-example");
    std::fs::create_dir_all(&dir)?;
    let net_path = dir.join("sector.net");
    let prop_path = dir.join("sector.prop");
    nn::serialize::save(&net, &net_path)?;
    std::fs::write(&prop_path, property.to_text())?;
    println!("\nwrote {} and {}", net_path.display(), prop_path.display());
    println!(
        "try: cargo run -p cli --bin charon-cli -- verify --network {} --property {}",
        net_path.display(),
        prop_path.display()
    );
    Ok(())
}
