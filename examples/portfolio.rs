//! Portfolio verification: race several policies on hard properties.
//!
//! Run with `cargo run --release --example portfolio`.

use std::sync::Arc;
use std::time::{Duration, Instant};

use charon::policy::{DomainSelection, FixedPolicy, LinearPolicy};
use charon::portfolio::PortfolioVerifier;
use charon::{RobustnessProperty, Verdict, Verifier, VerifierConfig};
use domains::{Bounds, DomainChoice};

fn main() {
    // A spiral classifier: many unstable ReLUs, properties of mixed
    // difficulty.
    let data = data::images::spiral(400, 0);
    let mut net = nn::train::random_mlp(2, &[24, 24], 2, 1);
    let tc = nn::train::TrainConfig {
        epochs: 150,
        learning_rate: 0.1,
        ..nn::train::TrainConfig::default()
    };
    let acc = nn::train::train_classifier(&mut net, &data.images, &data.labels, &tc);
    println!("spiral network accuracy: {acc:.2}");

    let config = VerifierConfig {
        timeout: Duration::from_secs(5),
        ..VerifierConfig::default()
    };
    let portfolio = PortfolioVerifier::new(
        vec![
            Arc::new(LinearPolicy::default()),
            Arc::new(FixedPolicy::new(DomainChoice::interval())),
            Arc::new(FixedPolicy::with_selection(DomainSelection::DeepPoly)),
            Arc::new(FixedPolicy::with_selection(DomainSelection::Solver {
                node_budget: 200,
            })),
        ],
        config.clone(),
    );
    let solo = Verifier::new(Arc::new(LinearPolicy::default()), config);

    println!(
        "\n{:<28} {:>12} {:>10} {:>12} {:>10}",
        "property", "portfolio", "(time)", "solo", "(time)"
    );
    for (i, center) in data.images.iter().take(6).enumerate() {
        let target = net.classify(center);
        let property =
            RobustnessProperty::new(Bounds::linf_ball(center, 0.04, Some((0.0, 1.0))), target);
        let t = Instant::now();
        let pv = portfolio.verify(&net, &property);
        let pt = t.elapsed();
        let t = Instant::now();
        let sv = solo.verify(&net, &property);
        let st = t.elapsed();
        println!(
            "{:<28} {:>12} {:>10.2?} {:>12} {:>10.2?}",
            format!("point {i} (class {target})"),
            verdict_name(&pv),
            pt,
            verdict_name(&sv),
            st
        );
    }
    println!("\nThe portfolio never loses to its members: the fastest decisive");
    println!("verdict wins and cancels the rest cooperatively.");
}

fn verdict_name(v: &Verdict) -> &'static str {
    match v {
        Verdict::Verified => "verified",
        Verdict::Refuted(_) => "refuted",
        Verdict::ResourceLimit => "budget",
    }
}
