//! Brightening attacks on a trained image classifier (the §7.1 workload).
//!
//! Trains a small MNIST-like network, builds brightening-attack
//! robustness properties at several thresholds, and runs both Charon and
//! AI2 on them to show the verification/falsification split.
//!
//! Run with `cargo run --release --example brightening`.

use std::time::Duration;

use baselines::ai2::Ai2;
use baselines::ToolVerdict;
use charon::{Verdict, Verifier};
use data::properties::brightening_suite;
use data::zoo::{build, ZooConfig, ZooNetwork};

fn main() {
    let config = ZooConfig::default();
    println!("training {} ...", ZooNetwork::Mnist3x32.name());
    let (net, accuracy) = build(ZooNetwork::Mnist3x32, &config);
    println!("test accuracy: {accuracy:.2}");

    let eval = ZooNetwork::Mnist3x32.dataset(100, 1234);
    let suite = brightening_suite(&net, &eval, &[0.85, 0.7, 0.55], 9);
    println!("generated {} brightening properties\n", suite.len());

    let verifier = Verifier::default();
    let ai2 = Ai2::zonotope();
    let timeout = Duration::from_secs(5);

    println!(
        "{:<8} {:>6} {:>12} {:>14}",
        "image", "tau", "Charon", "AI2-Zonotope"
    );
    for b in &suite {
        let charon_verdict = {
            let mut v = verifier.clone();
            v.config_mut().timeout = timeout;
            match v.verify(&net, &b.property) {
                Verdict::Verified => "verified",
                Verdict::Refuted(_) => "falsified",
                Verdict::ResourceLimit => "timeout",
            }
        };
        let ai2_verdict = match ai2.analyze(&net, &b.property, timeout) {
            ToolVerdict::Verified => "verified",
            ToolVerdict::Unknown => "unknown",
            ToolVerdict::Timeout => "timeout",
            other => match other {
                ToolVerdict::Falsified(_) => "falsified?",
                _ => "unsupported",
            },
        };
        println!(
            "{:<8} {:>6.2} {:>12} {:>14}",
            b.image_index, b.tau, charon_verdict, ai2_verdict
        );
    }

    println!("\nNote how Charon decides every property (it is δ-complete),");
    println!("while AI2 leaves the falsifiable and hard ones 'unknown'.");
}
