#!/usr/bin/env bash
# Tier-1 CI gate: build, full test suite, lint wall, then the chaos
# (fault-injection) suite under the dedicated `ci` profile.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q -p charon --test chaos --profile ci

# Documentation gate: doctests must pass and rustdoc must build clean
# (broken intra-doc links and missing docs surface as warnings).
cargo test -q --doc --workspace
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

# Kernel perf harness smoke run: validates the harness executes and the
# machine-readable schema is intact (full runs regenerate the committed
# BENCH_kernels.json baseline; see DESIGN.md "Performance architecture").
smoke_out="$(mktemp)"
cargo run --release -q -p bench --bin perf_kernels -- --smoke --out "$smoke_out"
grep -q '"schema": "bench-kernels-v1"' "$smoke_out"
grep -q '"name": "zonotope_affine"' "$smoke_out"
grep -q '"phases":' "$smoke_out"
rm -f "$smoke_out"

# Telemetry smoke run: a traced verify must produce schema-valid JSONL,
# checked by the `trace` subcommand's strict line-by-line validator.
trace_dir="$(mktemp -d)"
cargo run --release -q -p cli -- example \
  --out-network "$trace_dir/xor.net" --out-property "$trace_dir/p.prop"
cargo run --release -q -p cli -- verify \
  --network "$trace_dir/xor.net" --property "$trace_dir/p.prop" \
  --report --trace-out "$trace_dir/run.jsonl" | grep -q 'run report: verified'
cargo run --release -q -p cli -- trace --in "$trace_dir/run.jsonl" | grep -q 'verdict: 1'
rm -rf "$trace_dir"
