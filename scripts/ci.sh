#!/usr/bin/env bash
# Tier-1 CI gate: build, full test suite, lint wall, then the chaos
# (fault-injection) suite under the dedicated `ci` profile.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q -p charon --test chaos --profile ci
