#!/usr/bin/env bash
# Tier-1 CI gate: build, full test suite, lint wall, then the chaos
# (fault-injection) suite under the dedicated `ci` profile.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q -p charon --test chaos --profile ci

# Kernel perf harness smoke run: validates the harness executes and the
# machine-readable schema is intact (full runs regenerate the committed
# BENCH_kernels.json baseline; see DESIGN.md "Performance architecture").
smoke_out="$(mktemp)"
cargo run --release -q -p bench --bin perf_kernels -- --smoke --out "$smoke_out"
grep -q '"schema": "bench-kernels-v1"' "$smoke_out"
grep -q '"name": "zonotope_affine"' "$smoke_out"
rm -f "$smoke_out"
