#!/usr/bin/env bash
# Tier-1 CI gate: build, full test suite, lint wall, then the chaos
# (fault-injection) suite under the dedicated `ci` profile.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings
cargo test -q -p charon --test chaos --profile ci

# Portable-fallback gate: the same suite with scalar kernels and the
# shared-queue scheduler forced, so the non-SIMD dispatch arm and the
# fallback scheduling discipline stay correct on every host.
CHARON_FORCE_SCALAR=1 cargo test -q

# Documentation gate: doctests must pass and rustdoc must build clean
# (broken intra-doc links and missing docs surface as warnings).
cargo test -q --doc --workspace
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

# Kernel perf harness smoke run: validates the harness executes and the
# machine-readable schema is intact (full runs regenerate the committed
# BENCH_kernels.json baseline; see DESIGN.md "Performance architecture").
smoke_out="$(mktemp)"
cargo run --release -q -p bench --bin perf_kernels -- --smoke --out "$smoke_out"
grep -q '"schema": "bench-kernels-v1"' "$smoke_out"
grep -q '"name": "zonotope_affine"' "$smoke_out"
grep -q '"name": "simd_affine"' "$smoke_out"
grep -q '"name": "scheduler_throughput"' "$smoke_out"
grep -q '"phases":' "$smoke_out"
rm -f "$smoke_out"

# Telemetry smoke run: a traced verify must produce schema-valid JSONL,
# checked by the `trace` subcommand's strict line-by-line validator.
# (Capture output instead of piping into `grep -q`: an early grep exit
# closes the pipe and turns the CLI's remaining writes into EPIPE
# failures.)
trace_dir="$(mktemp -d)"
cargo run --release -q -p cli -- example \
  --out-network "$trace_dir/xor.net" --out-property "$trace_dir/p.prop"
cargo run --release -q -p cli -- verify \
  --network "$trace_dir/xor.net" --property "$trace_dir/p.prop" \
  --report --trace-out "$trace_dir/run.jsonl" | tee "$trace_dir/verify.out" >/dev/null
grep -q 'run report: verified' "$trace_dir/verify.out"
cargo run --release -q -p cli -- trace --in "$trace_dir/run.jsonl" \
  | tee "$trace_dir/trace.out" >/dev/null
grep -q 'verdict: 1' "$trace_dir/trace.out"
rm -rf "$trace_dir"

# Certified-verdict smoke: verify a zoo property with certificate
# emission, the independent auditor must accept the artifact, and a
# single corrupted byte must turn acceptance into a nonzero rejection.
cert_dir="$(mktemp -d)"
cargo run --release -q -p cli -- prop --zoo mnist-3x32 --image 0 --tau 0.7 \
  --out-network "$cert_dir/zoo.net" --out-property "$cert_dir/zoo.prop"
cargo run --release -q -p cli -- verify \
  --network "$cert_dir/zoo.net" --property "$cert_dir/zoo.prop" \
  --cert-out "$cert_dir/zoo.cert" | tee "$cert_dir/verify.out" >/dev/null
grep -q 'certificate written to' "$cert_dir/verify.out"
cargo run --release -q -p cli -- audit \
  --network "$cert_dir/zoo.net" --cert "$cert_dir/zoo.cert" \
  | tee "$cert_dir/audit.out" >/dev/null
grep -q 'certificate ok: verified' "$cert_dir/audit.out"
cp "$cert_dir/zoo.cert" "$cert_dir/forged.cert"
printf 'X' | dd of="$cert_dir/forged.cert" bs=1 seek=20 conv=notrunc status=none
if cargo run --release -q -p cli -- audit \
  --network "$cert_dir/zoo.net" --cert "$cert_dir/forged.cert" \
  >"$cert_dir/forged.out"; then
  echo "ci.sh: audit accepted a corrupted certificate" >&2; exit 1
fi
grep -q 'certificate rejected' "$cert_dir/forged.out"
rm -rf "$cert_dir"

# Server smoke run: start the daemon on a Unix socket, verify one job,
# resubmit it (must be a result-cache hit), then drain with zero lost
# jobs. Everything goes through the public CLI, so this also covers the
# serve/submit subcommands and their exit codes.
server_dir="$(mktemp -d)"
sock="$server_dir/daemon.sock"
cargo run --release -q -p cli -- example \
  --out-network "$server_dir/xor.net" --out-property "$server_dir/p.prop"
cargo run --release -q -p cli -- serve --addr "unix:$sock" --workers 1 &
serve_pid=$!
for _ in $(seq 100); do [ -S "$sock" ] && break; sleep 0.05; done
[ -S "$sock" ]
cargo run --release -q -p cli -- submit --addr "unix:$sock" \
  --network "$server_dir/xor.net" --property "$server_dir/p.prop" \
  | tee "$server_dir/s1.out" >/dev/null
grep -qx 'verified' "$server_dir/s1.out"
cargo run --release -q -p cli -- submit --addr "unix:$sock" \
  --network "$server_dir/xor.net" --property "$server_dir/p.prop" \
  | tee "$server_dir/s2.out" >/dev/null
grep -qx 'verified (cached)' "$server_dir/s2.out"
cargo run --release -q -p cli -- submit --addr "unix:$sock" --stats \
  | tee "$server_dir/stats.out" >/dev/null
grep -qx 'cache_hits: 1' "$server_dir/stats.out"
cargo run --release -q -p cli -- submit --addr "unix:$sock" --drain \
  | tee "$server_dir/drain.out" >/dev/null
grep -q 'lost=0' "$server_dir/drain.out"
wait "$serve_pid"
rm -rf "$server_dir"

# Crash-only chaos smoke: a journaled daemon is SIGKILLed mid-stream
# and restarted on the same socket + journal. Every in-flight submission
# must ride out the restart (client retry + idempotent ids + journal
# replay), `--query` must resolve every id from the stored results, and
# the final drain must lose nothing. The daemon is exec'd directly (not
# via `cargo run`) so the SIGKILL hits the daemon process itself.
chaos_dir="$(mktemp -d)"
charon_bin="target/release/charon-cli"
csock="$chaos_dir/daemon.sock"
cwal="$chaos_dir/daemon.wal"
"$charon_bin" example \
  --out-network "$chaos_dir/xor.net" --out-property "$chaos_dir/p.prop"
"$charon_bin" serve --addr "unix:$csock" --workers 1 --journal "$cwal" &
chaos_pid=$!
for _ in $(seq 100); do [ -S "$csock" ] && break; sleep 0.05; done
[ -S "$csock" ]
sub_pids=()
for id in 21 22 23; do
  "$charon_bin" submit --addr "unix:$csock" \
    --network "$chaos_dir/xor.net" --property "$chaos_dir/p.prop" \
    --id "$id" --retries 10 >"$chaos_dir/sub$id.out" &
  sub_pids+=("$!")
done
sleep 0.1
kill -9 "$chaos_pid"
wait "$chaos_pid" 2>/dev/null || true
rm -f "$csock"
"$charon_bin" serve --addr "unix:$csock" --workers 1 --journal "$cwal" &
chaos_pid=$!
for _ in $(seq 100); do [ -S "$csock" ] && break; sleep 0.05; done
[ -S "$csock" ]
for pid in "${sub_pids[@]}"; do wait "$pid"; done
for id in 21 22 23; do
  grep -q 'verified' "$chaos_dir/sub$id.out"
  "$charon_bin" submit --addr "unix:$csock" --query "$id" \
    | tee "$chaos_dir/q$id.out" >/dev/null
  grep -q 'verified' "$chaos_dir/q$id.out"
done
"$charon_bin" submit --addr "unix:$csock" --drain \
  | tee "$chaos_dir/cdrain.out" >/dev/null
grep -q 'lost=0' "$chaos_dir/cdrain.out"
wait "$chaos_pid"
rm -rf "$chaos_dir"

# Server loadgen smoke run: harness executes and the machine-readable
# schema is intact (full runs regenerate the committed BENCH_server.json
# baseline; see DESIGN.md "Service architecture").
loadgen_out="$(mktemp)"
cargo run --release -q -p bench --bin loadgen -- --smoke --cert --out "$loadgen_out"
grep -q '"schema": "bench-server-v1"' "$loadgen_out"
grep -q '"cache_hits":' "$loadgen_out"
grep -q '"certified": 4' "$loadgen_out"
rm -f "$loadgen_out"

# Loadgen under fault injection: scheduled worker kills mid-stream must
# not drop a single query (supervised respawn + capacity-exempt
# requeue), and the drain must still be clean.
faults_log="$(mktemp)"
cargo run --release -q -p bench --bin loadgen -- --smoke --faults \
  --out "$faults_log.json" | tee "$faults_log" >/dev/null
grep -q 'every query answered' "$faults_log"
rm -f "$faults_log" "$faults_log.json"

# Cluster smoke: coordinator + 2 shard nodes over TCP, one verdict from
# a sharded job, then kill -9 one node mid-job and assert the verdict
# still arrives (orphaned-shard re-dispatch) and the coordinator drain
# loses nothing. Direct binary exec so the SIGKILL hits the node itself.
cluster_dir="$(mktemp -d)"
"$charon_bin" example \
  --out-network "$cluster_dir/xor.net" --out-property "$cluster_dir/p.prop"
"$charon_bin" node --addr tcp:127.0.0.1:7181 --workers 1 &
node1_pid=$!
"$charon_bin" node --addr tcp:127.0.0.1:7182 --workers 1 &
node2_pid=$!
sleep 0.3
"$charon_bin" serve --addr tcp:127.0.0.1:7180 --coordinator \
  --nodes tcp:127.0.0.1:7181,tcp:127.0.0.1:7182 --shards 4 \
  --journal "$cluster_dir/coord.wal" &
coord_pid=$!
sleep 0.3
"$charon_bin" submit --addr tcp:127.0.0.1:7180 \
  --network "$cluster_dir/xor.net" --property "$cluster_dir/p.prop" \
  --id 31 | tee "$cluster_dir/c1.out" >/dev/null
grep -qx 'verified' "$cluster_dir/c1.out"
# Kill one node mid-job: submit in the background, SIGKILL node 1, and
# the coordinator must re-dispatch its shards to node 2.
"$charon_bin" submit --addr tcp:127.0.0.1:7180 \
  --network "$cluster_dir/xor.net" --property "$cluster_dir/p.prop" \
  --id 32 --timeout-ms 30000 --retries 10 >"$cluster_dir/c2.out" &
sub_pid=$!
kill -9 "$node1_pid"
wait "$node1_pid" 2>/dev/null || true
wait "$sub_pid"
grep -qx 'verified' "$cluster_dir/c2.out"
"$charon_bin" submit --addr tcp:127.0.0.1:7180 --drain \
  | tee "$cluster_dir/cdrain.out" >/dev/null
grep -q 'lost=0' "$cluster_dir/cdrain.out"
wait "$coord_pid"
"$charon_bin" submit --addr tcp:127.0.0.1:7182 --drain >/dev/null
wait "$node2_pid"
rm -rf "$cluster_dir"

# Cluster loadgen smoke: the multi-node benchmark harness executes and
# its schema is intact (full runs regenerate BENCH_cluster.json).
cluster_out="$(mktemp)"
cargo run --release -q -p bench --bin loadgen -- --cluster --smoke --out "$cluster_out"
grep -q '"schema": "bench-cluster-v1"' "$cluster_out"
grep -q '"two_node_qps":' "$cluster_out"
rm -f "$cluster_out"

# Overload smoke: drive the daemon at ~4x its measured plateau with
# shedding and client deadlines on. The harness itself asserts the
# acceptance bars (nonzero shed, p99 of answered jobs within the
# deadline, goodput near the plateau in full runs); here we re-check
# the load-bearing fields in the emitted JSON (full runs regenerate the
# committed BENCH_overload.json baseline).
overload_out="$(mktemp)"
cargo run --release -q -p bench --bin loadgen -- --overload --smoke --out "$overload_out"
grep -q '"schema": "bench-overload-v1"' "$overload_out"
grep -q '"lost": 0' "$overload_out"
if grep -q '"shed": 0,' "$overload_out"; then
  echo "ci.sh: overload run shed nothing — controller inert?" >&2; exit 1
fi
rm -f "$overload_out"

# Circuit-breaker smoke: a 2-node cluster where node 1 deterministically
# stalls its first shard (--fault-shard-stall). The coordinator must
# blow the read deadline once, trip the node's breaker
# (--breaker-threshold 1), re-route the shard to node 2, and still
# deliver the verdict; the stats must show the open breaker.
breaker_dir="$(mktemp -d)"
"$charon_bin" example \
  --out-network "$breaker_dir/xor.net" --out-property "$breaker_dir/p.prop"
"$charon_bin" node --addr tcp:127.0.0.1:7191 --workers 1 \
  --fault-shard-stall 0 --fault-shard-stall-ms 60000 &
bnode1_pid=$!
"$charon_bin" node --addr tcp:127.0.0.1:7192 --workers 1 &
bnode2_pid=$!
sleep 0.3
"$charon_bin" serve --addr tcp:127.0.0.1:7190 --coordinator \
  --nodes tcp:127.0.0.1:7191,tcp:127.0.0.1:7192 --shards 4 \
  --breaker-threshold 1 --breaker-cooldown-ms 60000 --node-grace-ms 500 \
  --no-journal &
bcoord_pid=$!
sleep 0.3
"$charon_bin" submit --addr tcp:127.0.0.1:7190 \
  --network "$breaker_dir/xor.net" --property "$breaker_dir/p.prop" \
  --id 41 --timeout-ms 1000 | tee "$breaker_dir/b1.out" >/dev/null
grep -qx 'verified' "$breaker_dir/b1.out"
"$charon_bin" submit --addr tcp:127.0.0.1:7190 --stats \
  | tee "$breaker_dir/bstats.out" >/dev/null
grep -qx 'breaker_open: 1' "$breaker_dir/bstats.out"
grep -qx 'breaker_opens: 1' "$breaker_dir/bstats.out"
"$charon_bin" submit --addr tcp:127.0.0.1:7190 --drain \
  | tee "$breaker_dir/bdrain.out" >/dev/null
grep -q 'lost=0' "$breaker_dir/bdrain.out"
wait "$bcoord_pid"
"$charon_bin" submit --addr tcp:127.0.0.1:7192 --drain >/dev/null
wait "$bnode2_pid"
"$charon_bin" submit --addr tcp:127.0.0.1:7191 --drain >/dev/null
wait "$bnode1_pid"
rm -rf "$breaker_dir"

# Doc-freshness gate: every protocol message kind the code declares must
# be documented in docs/PROTOCOL.md (the kind inventories in protocol.rs
# are single-line consts, so a line-oriented extraction suffices; the
# same inventory is checked by crates/server/tests/protocol_doc.rs).
kinds="$(sed -n 's/^pub const \(REQUEST\|RESPONSE\)_KINDS.*= &\[\(.*\)\];$/\2/p' \
  crates/server/src/protocol.rs | tr -d '" ' | tr ',' '\n' | sort -u)"
[ -n "$kinds" ] || { echo "ci.sh: failed to extract protocol kinds" >&2; exit 1; }
for kind in $kinds; do
  grep -q "\`$kind\`" docs/PROTOCOL.md \
    || { echo "ci.sh: protocol kind '$kind' missing from docs/PROTOCOL.md" >&2; exit 1; }
done
