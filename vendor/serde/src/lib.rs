//! Offline stand-in for the `serde` crate.
//!
//! Provides marker traits named `Serialize` / `Deserialize` and re-exports
//! the no-op derive macros of the vendored `serde_derive`, so existing
//! `#[derive(Serialize, Deserialize)]` annotations compile unchanged. No
//! actual serialization is provided — every on-disk format in this
//! workspace is hand-rolled plain text.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
