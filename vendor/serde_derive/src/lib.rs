//! Offline stand-in for `serde_derive`.
//!
//! The workspace only *annotates* types with `#[derive(Serialize,
//! Deserialize)]`; nothing actually serializes through serde (all on-disk
//! formats are hand-rolled plain text). These derives therefore expand to
//! nothing, which keeps the annotations compiling without the real
//! (unavailable) serde machinery.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
