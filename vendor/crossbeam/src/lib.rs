//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides [`scope`] with the crossbeam 0.8 calling convention (spawn
//! closures receive a `&Scope` argument, the scope call returns a
//! `Result` that is `Err` when a child thread panicked), implemented on
//! top of `std::thread::scope`.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

pub mod thread {
    //! Scoped threads.

    use super::*;

    /// Error payload of a panicked scope: the boxed panic value of the
    /// first child that panicked (or of the scope closure itself).
    pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

    /// A scope handle passed to [`scope`] closures and to spawned threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a `&Scope` so it
        /// can spawn further threads, matching crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which threads can be spawned; returns
    /// after every spawned thread has finished.
    ///
    /// # Errors
    ///
    /// Returns `Err` with the panic payload if the closure or any
    /// not-explicitly-joined child thread panicked.
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn child_panic_becomes_err() {
        let result = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_argument() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }
}
