//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex` with parking_lot's non-poisoning `lock()`
//! signature (a panic while holding the lock does not poison it for
//! other threads — matching parking_lot semantics, which the
//! fault-isolation layer in `charon` relies on).

/// A mutual-exclusion primitive with parking_lot's API.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available. Unlike
    /// `std::sync::Mutex`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*m.lock(), 0);
    }
}
