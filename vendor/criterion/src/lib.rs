//! Offline stand-in for the `criterion` crate.
//!
//! Provides just enough API surface for the workspace's benchmarks to
//! compile and produce rough timings: [`Criterion::bench_function`],
//! benchmark groups, [`Bencher::iter`] / [`Bencher::iter_batched`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros. Each routine is
//! run for a small fixed number of iterations and the mean wall-clock
//! time is printed — no statistics, warm-up, or HTML reports.

use std::time::Instant;

/// Number of measured iterations per benchmark routine.
const ITERS: u32 = 10;

/// Opaque value sink preventing the optimizer from deleting benchmark
/// bodies.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; ignored by the stub.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / ITERS as f64;
    }

    /// Times `routine` with a fresh `setup` output per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = 0u128;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.nanos_per_iter = total as f64 / ITERS as f64;
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _sample_size: usize,
}

impl Criterion {
    /// Sets the sample count (accepted for compatibility; the stub uses a
    /// fixed iteration count).
    pub fn sample_size(mut self, n: usize) -> Self {
        self._sample_size = n;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher { nanos_per_iter: 0.0 };
        f(&mut bencher);
        println!("bench {name}: {:.0} ns/iter", bencher.nanos_per_iter);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{name}", self.name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
