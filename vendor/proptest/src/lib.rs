//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest 1.x surface used by this
//! workspace: the [`proptest!`] macro over functions whose arguments are
//! drawn from range strategies or [`collection::vec`], plus
//! [`prop_assert!`] / [`prop_assert_eq!`]. Each test runs a fixed number
//! of deterministic seeded cases (no shrinking — failing inputs are
//! printed instead).

use rand::prelude::*;

/// Number of cases each `proptest!` test executes by default.
pub const CASES: u64 = 24;

/// Per-block configuration, settable with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: CASES }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u64) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of random test inputs.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u64, u32, usize, i64, i32);

pub mod collection {
    //! Collection strategies.

    use super::*;

    /// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Creates a strategy for vectors with the given element strategy and
    /// length specification.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs the body of one generated test case; used by the [`proptest!`]
/// expansion.
pub fn run_case(case: u64, args: &str, result: Result<(), String>) {
    if let Err(msg) = result {
        panic!("proptest case {case} failed: {msg}\n  inputs: {args}");
    }
}

/// Creates the deterministic per-test RNG; used by the [`proptest!`]
/// expansion (callers may not depend on `rand` themselves).
pub fn new_rng() -> StdRng {
    StdRng::seed_from_u64(0x5eed_0000)
}

/// Property-test entry point: declares `#[test]` functions whose
/// arguments are drawn from strategies, e.g.
/// `proptest! { #[test] fn f(x in 0u64..10) { prop_assert!(x < 10); } }`.
///
/// An optional `#![proptest_config(...)]` inner attribute at the top of
/// the block overrides the case count.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)+) => {
        $crate::__proptest_impl!(($cfg); $($rest)+);
    };
    ($($rest:tt)+) => {
        $crate::__proptest_impl!(($crate::ProptestConfig::default()); $($rest)+);
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::new_rng();
                for __case in 0..__config.cases {
                    $(let $arg = ($strat).generate(&mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}  ",)+),
                        $(&$arg),+
                    );
                    let __result: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    $crate::run_case(__case, &__inputs, __result);
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the failing
/// inputs instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a), stringify!($b), __a, __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    }};
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_respected(x in 0u64..10, f in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0.0f64..1.0, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(v.len(), v.iter().filter(|x| x.is_finite()).count());
        }
    }
}
