//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! stub provides the (small) subset of the rand 0.8 API the workspace
//! uses: [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over float and
//! integer ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256** seeded through splitmix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but everything in this
//! workspace only relies on *determinism per seed*, never on specific
//! values.

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, implemented for the range types used as
/// `gen_range` arguments.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types that can be sampled uniformly from a range. The blanket
/// [`SampleRange`] impls below mirror upstream rand's structure so `T`
/// is inferred structurally from the range expression.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        T::sample_inclusive(start, end, rng)
    }
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.next_f64() < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(usize, u64, u32, i64, i32, i8, u8, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let v = lo + (hi - lo) * rng.next_f64() as $t;
                // Guard against rounding up onto the excluded endpoint.
                if v >= hi {
                    lo
                } else {
                    v
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let v = lo + (hi - lo) * rng.next_f64() as $t;
                v.clamp(lo, hi)
            }
        }
    )*};
}

impl_float_uniform!(f64, f32);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Shuffling support for slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `rand::prelude`.
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(0..5usize);
            assert!(i < 5);
            let j = rng.gen_range(0..=4u64);
            assert!(j <= 4);
            let inc = rng.gen_range(1.5f64..=1.5);
            assert_eq!(inc, 1.5);
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
