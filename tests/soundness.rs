//! Soundness and δ-completeness properties of the full verifier, checked
//! against concrete sampling and gradient attack on random networks.

use std::time::Duration;

use charon::{RobustnessProperty, Verdict, Verifier};
use domains::Bounds;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn verifier(secs: u64) -> Verifier {
    let mut v = Verifier::default();
    v.config_mut().timeout = Duration::from_secs(secs);
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// If Charon verifies a property, no sampled point violates it and
    /// a fresh PGD attack cannot find a violation either.
    #[test]
    fn verified_regions_have_no_counterexamples(seed in 0u64..40) {
        let net = nn::train::random_mlp(3, &[8, 8], 3, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7777);
        let center: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.8..0.8)).collect();
        let target = net.classify(&center);
        let region = Bounds::linf_ball(&center, 0.15, None);
        let prop = RobustnessProperty::new(region.clone(), target);

        if let Verdict::Verified = verifier(20).verify(&net, &prop) {
            // Dense random sampling.
            for _ in 0..300 {
                let x = region.sample(&mut rng);
                prop_assert_eq!(net.classify(&x), target, "sampled violation at {:?}", x);
            }
            // Independent adversarial attack with a different seed.
            let attack = attack::Minimizer::new(seed ^ 0xdead)
                .with_restarts(6)
                .minimize(&net, &region, target);
            prop_assert!(
                attack.objective > 0.0,
                "PGD found a violation in a verified region"
            );
        }
    }

    /// If Charon refutes, the returned point is inside the region and is
    /// a δ-counterexample (Definition 5.3).
    #[test]
    fn refutations_are_delta_counterexamples(seed in 0u64..40) {
        let net = nn::train::random_mlp(2, &[6], 3, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1212);
        let center: Vec<f64> = (0..2).map(|_| rng.gen_range(-0.8..0.8)).collect();
        let target = net.classify(&center);
        // Large region: often falsifiable.
        let region = Bounds::linf_ball(&center, 0.8, None);
        let prop = RobustnessProperty::new(region.clone(), target);

        if let Verdict::Refuted(cex) = verifier(20).verify(&net, &prop) {
            prop_assert!(region.contains(&cex.point));
            let f = net.objective(&cex.point, target);
            prop_assert!((f - cex.objective).abs() < 1e-9, "stale objective value");
            prop_assert!(f <= 1e-9, "not a δ-counterexample: F = {f}");
        }
    }
}

#[test]
fn delta_complete_no_unknowns_with_budget() {
    // With a generous budget on small problems the verifier must decide
    // one way or the other (Theorem 5.2/5.4): never Unknown, and
    // ResourceLimit should not occur on these sizes.
    for seed in 0..10 {
        let net = nn::train::random_mlp(2, &[5], 2, seed);
        let prop = RobustnessProperty::new(
            Bounds::linf_ball(&[0.1, -0.1], 0.5, None),
            net.classify(&[0.1, -0.1]),
        );
        let verdict = verifier(30).verify(&net, &prop);
        assert!(
            !matches!(verdict, Verdict::ResourceLimit),
            "seed {seed} failed to decide a tiny problem"
        );
    }
}

#[test]
fn delta_controls_refutation_strictness() {
    // A robust property with a known positive margin is verified for
    // δ below the margin and refuted (δ-counterexample) above it.
    let net = nn::samples::xor_network();
    let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    // True minimum margin on this region is 0.2.
    let mut v = verifier(20);
    v.config_mut().delta = 0.05;
    assert_eq!(v.verify(&net, &prop), Verdict::Verified);

    v.config_mut().delta = 0.3;
    match v.verify(&net, &prop) {
        Verdict::Refuted(cex) => {
            assert!(cex.objective <= 0.3);
            assert!(cex.objective > 0.0, "margin is truly positive");
        }
        other => panic!("expected δ-refutation, got {other:?}"),
    }
}

#[test]
fn verifier_is_deterministic() {
    let net = nn::train::random_mlp(3, &[10], 3, 5);
    let prop = RobustnessProperty::new(
        Bounds::linf_ball(&[0.0, 0.1, -0.2], 0.3, None),
        net.classify(&[0.0, 0.1, -0.2]),
    );
    let a = verifier(20).verify(&net, &prop);
    let b = verifier(20).verify(&net, &prop);
    assert_eq!(a, b);
}
