//! End-to-end integration tests spanning the whole workspace: data
//! generation -> training -> property generation -> verification with
//! Charon and all baselines.

use std::time::Duration;

use baselines::ai2::Ai2;
use baselines::reluplex::Reluplex;
use baselines::reluval::ReluVal;
use baselines::ToolVerdict;
use charon::{RobustnessProperty, Verdict, Verifier};
use data::properties::brightening_suite;
use data::zoo::{build, ZooConfig, ZooNetwork};
use nn::train::TrainConfig;

fn quick_zoo_config() -> ZooConfig {
    ZooConfig {
        train_size: 200,
        train: TrainConfig {
            epochs: 25,
            ..TrainConfig::default()
        },
        cache_dir: None,
        ..ZooConfig::default()
    }
}

#[test]
fn full_pipeline_mnist_brightening() {
    let (net, accuracy) = build(ZooNetwork::Mnist3x32, &quick_zoo_config());
    assert!(
        accuracy > 0.75,
        "network too weak for meaningful benchmarks"
    );

    let eval = ZooNetwork::Mnist3x32.dataset(60, 42);
    let suite = brightening_suite(&net, &eval, &[0.85], 6);
    assert!(!suite.is_empty());

    let mut verifier = Verifier::default();
    verifier.config_mut().timeout = Duration::from_secs(10);

    let mut decided = 0;
    for b in &suite {
        match verifier.verify(&net, &b.property) {
            Verdict::Verified => decided += 1,
            Verdict::Refuted(cex) => {
                decided += 1;
                // The counterexample must live in the region and be a
                // δ-counterexample.
                assert!(b.property.region().contains(&cex.point));
                assert!(net.objective(&cex.point, b.property.target()) <= 1e-9 + 1e-12);
            }
            Verdict::ResourceLimit => {}
        }
    }
    assert!(
        decided >= suite.len() / 2,
        "too few decided: {decided}/{}",
        suite.len()
    );
}

#[test]
fn charon_agrees_with_complete_solver() {
    // On tiny networks the Reluplex-style solver is the ground truth.
    let budget = Duration::from_secs(30);
    for seed in 0..5 {
        let net = nn::train::random_mlp(3, &[6, 6], 3, seed);
        let center = vec![0.2, -0.1, 0.4];
        let prop = RobustnessProperty::new(
            domains::Bounds::linf_ball(&center, 0.25, None),
            net.classify(&center),
        );
        let truth = Reluplex::default().analyze(&net, &prop, budget);
        let charon = {
            let mut v = Verifier::default();
            v.config_mut().timeout = budget;
            v.verify(&net, &prop)
        };
        match (&truth, &charon) {
            (ToolVerdict::Verified, Verdict::Verified) => {}
            (ToolVerdict::Falsified(_), Verdict::Refuted(_)) => {}
            (ToolVerdict::Timeout, _) | (_, Verdict::ResourceLimit) => {}
            other => panic!("seed {seed}: disagreement {other:?}"),
        }
    }
}

#[test]
fn all_tools_run_on_shared_property() {
    let (net, _) = build(ZooNetwork::Mnist3x32, &quick_zoo_config());
    let eval = ZooNetwork::Mnist3x32.dataset(10, 3);
    let image = &eval.images[0];
    let prop = RobustnessProperty::new(
        data::properties::brightening_region(image, 0.9),
        net.classify(image),
    );
    let budget = Duration::from_secs(10);

    let charon = Verifier::default().verify(&net, &prop);
    let ai2 = Ai2::zonotope().analyze(&net, &prop, budget);
    let reluval = ReluVal::default().analyze(&net, &prop, budget);

    // Soundness coherence: if any sound tool verifies, no other may
    // produce a *true* counterexample.
    let someone_verified =
        charon.is_verified() || ai2 == ToolVerdict::Verified || reluval == ToolVerdict::Verified;
    if someone_verified {
        if let Verdict::Refuted(cex) = &charon {
            assert!(
                !cex.is_true_violation(),
                "verified by a sound tool but Charon found a violation"
            );
        }
    }
}

#[test]
fn conv_network_verifiable_by_charon_and_ai2_only() {
    let (net, _) = build(ZooNetwork::ConvSmall, &quick_zoo_config());
    let eval = ZooNetwork::ConvSmall.dataset(10, 9);
    let image = &eval.images[0];
    let prop = RobustnessProperty::new(
        data::properties::brightening_region(image, 0.95),
        net.classify(image),
    );
    let budget = Duration::from_secs(10);

    // ReluVal and Reluplex refuse max-pool architectures (as in §7.2).
    assert_eq!(
        ReluVal::default().analyze(&net, &prop, budget),
        ToolVerdict::Unsupported
    );
    assert_eq!(
        Reluplex::default().analyze(&net, &prop, budget),
        ToolVerdict::Unsupported
    );

    // Charon handles it (any verdict but a crash/unknown is acceptable;
    // δ-completeness means no Unknown).
    let mut verifier = Verifier::default();
    verifier.config_mut().timeout = Duration::from_secs(10);
    let verdict = verifier.verify(&net, &prop);
    match verdict {
        Verdict::Verified | Verdict::Refuted(_) | Verdict::ResourceLimit => {}
    }
}

#[test]
fn serialized_network_verifies_identically() {
    let (net, _) = build(ZooNetwork::Mnist3x32, &quick_zoo_config());
    let text = nn::serialize::to_text(&net);
    let reloaded = nn::serialize::from_text(&text).unwrap();
    assert_eq!(net, reloaded);

    let eval = ZooNetwork::Mnist3x32.dataset(5, 77);
    let prop = RobustnessProperty::new(
        data::properties::brightening_region(&eval.images[0], 0.9),
        net.classify(&eval.images[0]),
    );
    let a = Verifier::default().verify(&net, &prop);
    let b = Verifier::default().verify(&reloaded, &prop);
    assert_eq!(a, b);
}
