//! Cross-validation of the abstract domains against each other and
//! against the complete solver: precision ordering, mutual soundness, and
//! exactness relationships that must hold by construction.

use std::time::{Duration, Instant};

use complete::{CompleteSolver, Decision};
use domains::deeppoly::DeepPoly;
use domains::symbolic::propagate_symbolic;
use domains::{propagate, AbstractElement, Bounds, Interval, Powerset, Zonotope};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_case(seed: u64) -> (nn::Network, Bounds, usize) {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b9));
    let net = nn::train::random_mlp(3, &[8, 8], 3, seed);
    let center: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.6..0.6)).collect();
    let eps = rng.gen_range(0.05..0.35);
    let region = Bounds::linf_ball(&center, eps, None);
    let target = net.classify(&center);
    (net, region, target)
}

/// Every domain's margin bound must under-approximate the exact minimum
/// margin, which the complete solver can bracket: if a domain verifies
/// (margin > 0), the complete solver must prove the property.
#[test]
fn domains_never_verify_what_the_solver_refutes() {
    let deadline = || Instant::now() + Duration::from_secs(20);
    for seed in 0..12 {
        let (net, region, target) = random_case(seed);
        let decision = CompleteSolver::default().decide(&net, &region, target, deadline());
        let truth_holds = match &decision {
            Decision::Proved => true,
            Decision::Violated(_) => false,
            Decision::Budget => continue,
        };

        let interval = propagate(&net, Interval::from_bounds(&region)).margin_lower_bound(target);
        let zonotope = propagate(&net, Zonotope::from_bounds(&region)).margin_lower_bound(target);
        let powerset = propagate(&net, Powerset::<Zonotope>::with_budget(&region, 4))
            .margin_lower_bound(target);
        let deeppoly = DeepPoly::analyze(&net, &region).margin_lower_bound(target);
        let symbolic = propagate_symbolic(&net, &region).margin_lower_bound(target);

        for (name, margin) in [
            ("interval", interval),
            ("zonotope", zonotope),
            ("powerset", powerset),
            ("deeppoly", deeppoly),
            ("symbolic", symbolic),
        ] {
            if margin > 0.0 {
                assert!(
                    truth_holds,
                    "seed {seed}: {name} verified (margin {margin}) but solver found a violation"
                );
            }
        }
    }
}

/// On purely affine networks every relational domain is exact, so all
/// margin bounds must coincide with the true minimum (which lives at a
/// box corner).
#[test]
fn relational_domains_exact_on_affine_networks() {
    for seed in 0..6 {
        let layer = {
            let mut rng = StdRng::seed_from_u64(seed);
            nn::AffineLayer::new(
                tensor::Matrix::from_fn(3, 2, |_, _| rng.gen_range(-1.0..1.0)),
                vec![0.1, -0.2, 0.3],
            )
        };
        let net = nn::Network::new(2, vec![nn::Layer::Affine(layer)]).unwrap();
        let region = Bounds::new(vec![-1.0, 0.0], vec![1.0, 2.0]);
        let target = net.classify(&region.center());

        // Brute-force the true minimum margin over the corners (the
        // minimum of a linear function over a box is at a corner).
        let mut truth = f64::INFINITY;
        for cx in [region.lower()[0], region.upper()[0]] {
            for cy in [region.lower()[1], region.upper()[1]] {
                truth = truth.min(nn::margin(&net.eval(&[cx, cy]), target));
            }
        }

        let zonotope = propagate(&net, Zonotope::from_bounds(&region)).margin_lower_bound(target);
        let deeppoly = DeepPoly::analyze(&net, &region).margin_lower_bound(target);
        let symbolic = propagate_symbolic(&net, &region).margin_lower_bound(target);
        assert!(
            (zonotope - truth).abs() < 1e-9,
            "zonotope {zonotope} vs {truth}"
        );
        assert!(
            (deeppoly - truth).abs() < 1e-9,
            "deeppoly {deeppoly} vs {truth}"
        );
        assert!(
            (symbolic - truth).abs() < 1e-9,
            "symbolic {symbolic} vs {truth}"
        );
    }
}

/// Every powerset budget yields a *sound* margin bound (never exceeds a
/// sampled concrete margin). Note that precision is not monotone in the
/// budget in general — case splits change which coordinates get relaxed
/// downstream — so we check soundness per budget rather than ordering.
#[test]
fn powerset_sound_for_every_budget() {
    for seed in 0..8 {
        let (net, region, target) = random_case(seed + 100);
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<Vec<f64>> = (0..40).map(|_| region.sample(&mut rng)).collect();
        let true_min = samples
            .iter()
            .map(|x| nn::margin(&net.eval(x), target))
            .fold(f64::INFINITY, f64::min);
        for budget in [1, 2, 4, 8] {
            let margin = propagate(&net, Powerset::<Zonotope>::with_budget(&region, budget))
                .margin_lower_bound(target);
            assert!(
                margin <= true_min + 1e-9,
                "seed {seed}: budget {budget} margin {margin} exceeds sampled min {true_min}"
            );
        }
    }
}

/// DeepPoly with the box intersection is never looser than intervals
/// (per-coordinate output bounds).
#[test]
fn deeppoly_dominates_interval_bounds() {
    for seed in 0..10 {
        let (net, region, _) = random_case(seed + 300);
        let dp = DeepPoly::analyze(&net, &region).bounds();
        let iv = propagate(&net, Interval::from_bounds(&region)).bounds();
        for k in 0..dp.dim() {
            assert!(
                dp.lower()[k] >= iv.lower()[k] - 1e-9,
                "seed {seed} coord {k}"
            );
            assert!(
                dp.upper()[k] <= iv.upper()[k] + 1e-9,
                "seed {seed} coord {k}"
            );
        }
    }
}
