//! Property-based tests of the verifier's metatheory: δ-monotonicity,
//! region-split coherence, statistics consistency, and policy invariance
//! of the *verdict* (only performance may differ between sound policies).

use std::sync::Arc;
use std::time::Duration;

use charon::policy::{FixedPolicy, LinearPolicy};
use charon::{RobustnessProperty, Verdict, Verifier, VerifierConfig};
use domains::{Bounds, DomainChoice};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn verifier_with(delta: f64) -> Verifier {
    let mut v = Verifier::default();
    v.config_mut().timeout = Duration::from_secs(15);
    v.config_mut().delta = delta;
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// δ-monotonicity: if the verifier refutes with a small δ, it must
    /// also refute (or at least not verify) with any larger δ, because
    /// every δ1-counterexample is a δ2-counterexample for δ2 >= δ1.
    #[test]
    fn refutations_are_monotone_in_delta(seed in 0u64..25) {
        let net = nn::train::random_mlp(2, &[6], 2, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5a5a);
        let center: Vec<f64> = (0..2).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let prop = RobustnessProperty::new(
            Bounds::linf_ball(&center, 0.4, None),
            net.classify(&center),
        );
        let small = verifier_with(1e-9).verify(&net, &prop);
        let large = verifier_with(0.1).verify(&net, &prop);
        if small.is_refuted() {
            prop_assert!(
                !large.is_verified(),
                "refuted at δ=1e-9 but verified at δ=0.1"
            );
        }
        if large.is_verified() {
            prop_assert!(small.is_verified(), "verified at δ=0.1 must imply at 1e-9");
        }
    }

    /// Split coherence: a property verified on a region is verified on
    /// both halves of any interior split (soundness is monotone under
    /// region restriction).
    #[test]
    fn verified_regions_verify_their_halves(seed in 0u64..20) {
        let net = nn::train::random_mlp(3, &[6], 3, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1f1f);
        let center: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let region = Bounds::linf_ball(&center, 0.2, None);
        let target = net.classify(&center);
        let prop = RobustnessProperty::new(region.clone(), target);
        let verifier = verifier_with(1e-9);
        if verifier.verify(&net, &prop).is_verified() {
            let (a, b) = region.bisect();
            prop_assert!(verifier
                .verify(&net, &prop.with_region(a))
                .is_verified());
            prop_assert!(verifier
                .verify(&net, &prop.with_region(b))
                .is_verified());
        }
    }

    /// Verdict invariance across sound policies: different policies may
    /// take different time but cannot disagree on decidable problems
    /// (everything here is small enough to decide well within budget).
    #[test]
    fn sound_policies_agree_on_verdicts(seed in 0u64..15) {
        let net = nn::train::random_mlp(2, &[5], 2, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77);
        let center: Vec<f64> = (0..2).map(|_| rng.gen_range(-0.4..0.4)).collect();
        let prop = RobustnessProperty::new(
            Bounds::linf_ball(&center, 0.3, None),
            net.classify(&center),
        );
        let config = VerifierConfig {
            timeout: Duration::from_secs(15),
            ..VerifierConfig::default()
        };
        let default = Verifier::new(Arc::new(LinearPolicy::default()), config.clone())
            .verify(&net, &prop);
        let interval = Verifier::new(
            Arc::new(FixedPolicy::new(DomainChoice::interval())),
            config.clone(),
        )
        .verify(&net, &prop);
        let zonotope = Verifier::new(
            Arc::new(FixedPolicy::new(DomainChoice::zonotope())),
            config,
        )
        .verify(&net, &prop);
        for v in [&interval, &zonotope] {
            match (&default, v) {
                (Verdict::ResourceLimit, _) | (_, Verdict::ResourceLimit) => {}
                (a, b) => prop_assert_eq!(
                    a.is_verified(),
                    b.is_verified(),
                    "policy disagreement: {:?} vs {:?}",
                    a,
                    b
                ),
            }
        }
    }
}

#[test]
fn stats_are_internally_consistent() {
    let net = nn::samples::xor_network();
    // Example 3.1's region: minimum margin 0.2 > 0, so it verifies.
    let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    let (verdict, stats) = verifier_with(1e-9).verify_with_stats(&net, &prop);
    assert!(verdict.is_verified());
    // Every split produces exactly two child regions; every region except
    // the root was produced by a split. On full verification the worklist
    // drains, so: regions == 1 + 2 * splits - (pruned == 0).
    assert_eq!(stats.regions, 1 + 2 * stats.splits);
    // Each processed region gets at most one attack and one analyze call.
    assert!(stats.attacks <= stats.regions);
    assert!(stats.analyze_calls <= stats.regions);
    let domain_total: usize = stats.domain_uses.iter().map(|(_, c)| c).sum();
    assert_eq!(domain_total, stats.analyze_calls);
    assert!(stats.verified_regions <= stats.analyze_calls + stats.regions);
}

#[test]
fn max_regions_cap_is_respected() {
    let net = nn::train::random_mlp(4, &[16, 16], 3, 11);
    let prop = RobustnessProperty::new(
        Bounds::linf_ball(&[0.0; 4], 0.9, None),
        net.classify(&[0.0; 4]),
    );
    let mut verifier = Verifier::default();
    verifier.config_mut().max_regions = 5;
    verifier.config_mut().counterexample_search = false;
    let (verdict, stats) = verifier.verify_with_stats(&net, &prop);
    // Either it decides very fast or it stops at the cap.
    if verdict == Verdict::ResourceLimit {
        assert!(stats.regions <= 5);
    }
}

#[test]
fn cancellation_flag_stops_verification() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let net = nn::train::random_mlp(4, &[16, 16], 3, 13);
    let prop = RobustnessProperty::new(
        Bounds::linf_ball(&[0.0; 4], 0.9, None),
        net.classify(&[0.0; 4]),
    );
    let flag = Arc::new(AtomicBool::new(true)); // pre-cancelled
    let mut verifier = Verifier::default();
    verifier.config_mut().cancel = Some(Arc::clone(&flag));
    verifier.config_mut().counterexample_search = false;
    let (verdict, stats) = verifier.verify_with_stats(&net, &prop);
    assert_eq!(verdict, Verdict::ResourceLimit);
    assert!(stats.regions <= 1, "pre-cancelled run did work: {stats:?}");
    assert!(flag.load(Ordering::Relaxed));
}
