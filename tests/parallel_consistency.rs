//! The parallel verifier must agree with the sequential one on every
//! decidable problem, across policies and thread counts.

use std::sync::Arc;
use std::time::Duration;

use charon::parallel::ParallelVerifier;
use charon::policy::{DomainSelection, FixedPolicy, LinearPolicy};
use charon::{RobustnessProperty, Verdict, Verifier, VerifierConfig};
use domains::{Bounds, DomainChoice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn config() -> VerifierConfig {
    VerifierConfig {
        timeout: Duration::from_secs(20),
        ..VerifierConfig::default()
    }
}

#[test]
fn parallel_matches_sequential_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0xbeef);
    for trial in 0..6 {
        let net = nn::train::random_mlp(3, &[7], 3, trial);
        let center: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let eps = rng.gen_range(0.1..0.5);
        let prop =
            RobustnessProperty::new(Bounds::linf_ball(&center, eps, None), net.classify(&center));
        let sequential =
            Verifier::new(Arc::new(LinearPolicy::default()), config()).verify(&net, &prop);
        for threads in [1, 2, 4] {
            let parallel =
                ParallelVerifier::new(Arc::new(LinearPolicy::default()), config(), threads)
                    .verify(&net, &prop);
            // Verdict *kind* must match; the specific counterexample may
            // differ between schedules.
            assert_eq!(
                sequential.is_verified(),
                parallel.is_verified(),
                "trial {trial}, {threads} threads: {sequential:?} vs {parallel:?}"
            );
            assert_eq!(sequential.is_refuted(), parallel.is_refuted());
            if let Verdict::Refuted(cex) = &parallel {
                assert!(prop.region().contains(&cex.point));
                assert!(net.objective(&cex.point, prop.target()) <= 1e-9);
            }
        }
    }
}

#[test]
fn parallel_works_with_every_fixed_selection() {
    let net = nn::samples::example_2_3_network();
    let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
    for selection in [
        DomainSelection::Abstract(DomainChoice::zonotope()),
        DomainSelection::Abstract(DomainChoice::interval()),
        DomainSelection::DeepPoly,
        DomainSelection::Solver { node_budget: 100 },
    ] {
        let policy = Arc::new(FixedPolicy::with_selection(selection));
        let verdict = ParallelVerifier::new(policy, config(), 3).verify(&net, &prop);
        assert!(
            verdict.is_verified(),
            "selection {selection} failed: {verdict:?}"
        );
    }
}

#[test]
fn batch_runner_matches_individual_runs() {
    let problems: Vec<(nn::Network, RobustnessProperty)> = (0..5)
        .map(|seed| {
            let net = nn::train::random_mlp(2, &[5], 2, seed);
            let prop = RobustnessProperty::new(
                Bounds::linf_ball(&[0.1, -0.1], 0.3, None),
                net.classify(&[0.1, -0.1]),
            );
            (net, prop)
        })
        .collect();
    let batch =
        charon::parallel::verify_batch(&problems, Arc::new(LinearPolicy::default()), &config(), 3);
    assert_eq!(batch.len(), problems.len());
    for ((net, prop), (verdict, elapsed)) in problems.iter().zip(batch.iter()) {
        let solo = Verifier::new(Arc::new(LinearPolicy::default()), config()).verify(net, prop);
        assert_eq!(solo.is_verified(), verdict.is_verified());
        assert_eq!(solo.is_refuted(), verdict.is_refuted());
        assert!(*elapsed <= Duration::from_secs(21));
    }
}
