//! The parallel verifier must agree with the sequential one on every
//! decidable problem, across policies and thread counts.

use std::sync::Arc;
use std::time::Duration;

use charon::parallel::ParallelVerifier;
use charon::policy::{DomainSelection, FixedPolicy, LinearPolicy};
use charon::{RobustnessProperty, SchedulerMode, Verdict, Verifier, VerifierConfig};
use domains::{Bounds, DomainChoice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn config() -> VerifierConfig {
    VerifierConfig {
        timeout: Duration::from_secs(20),
        ..VerifierConfig::default()
    }
}

#[test]
fn parallel_matches_sequential_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0xbeef);
    for trial in 0..6 {
        let net = nn::train::random_mlp(3, &[7], 3, trial);
        let center: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let eps = rng.gen_range(0.1..0.5);
        let prop =
            RobustnessProperty::new(Bounds::linf_ball(&center, eps, None), net.classify(&center));
        let sequential =
            Verifier::new(Arc::new(LinearPolicy::default()), config()).verify(&net, &prop);
        for threads in [1, 2, 4] {
            let parallel =
                ParallelVerifier::new(Arc::new(LinearPolicy::default()), config(), threads)
                    .verify(&net, &prop);
            // Verdict *kind* must match; the specific counterexample may
            // differ between schedules.
            assert_eq!(
                sequential.is_verified(),
                parallel.is_verified(),
                "trial {trial}, {threads} threads: {sequential:?} vs {parallel:?}"
            );
            assert_eq!(sequential.is_refuted(), parallel.is_refuted());
            if let Verdict::Refuted(cex) = &parallel {
                assert!(prop.region().contains(&cex.point));
                assert!(net.objective(&cex.point, prop.target()) <= 1e-9);
            }
        }
    }
}

#[test]
fn parallel_works_with_every_fixed_selection() {
    let net = nn::samples::example_2_3_network();
    let prop = RobustnessProperty::new(Bounds::new(vec![0.0, 0.0], vec![1.0, 1.0]), 1);
    for selection in [
        DomainSelection::Abstract(DomainChoice::zonotope()),
        DomainSelection::Abstract(DomainChoice::interval()),
        DomainSelection::DeepPoly,
        DomainSelection::Solver { node_budget: 100 },
    ] {
        let policy = Arc::new(FixedPolicy::with_selection(selection));
        let verdict = ParallelVerifier::new(policy, config(), 3).verify(&net, &prop);
        assert!(
            verdict.is_verified(),
            "selection {selection} failed: {verdict:?}"
        );
    }
}

/// Scheduler stress: a refinement-heavy run (interval-only policy forces
/// many splits) must reach the same verdict and explore exactly the same
/// number of regions as the sequential engine, under both scheduling
/// disciplines and with more workers than regions-per-deque (so the
/// work-stealing mode actually steals). The split tree is deterministic
/// given the policy, so `regions` accounting is schedule-independent.
#[test]
fn scheduler_modes_match_sequential_region_accounting() {
    let net = nn::samples::xor_network();
    let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    let policy = || Arc::new(FixedPolicy::new(DomainChoice::interval()));
    let sequential = Verifier::new(policy(), config())
        .try_verify_run(&net, &prop)
        .unwrap();
    assert_eq!(sequential.verdict, Verdict::Verified);
    assert!(sequential.stats.regions > 4, "need a multi-region baseline");

    for mode in [SchedulerMode::WorkStealing, SchedulerMode::SharedQueue] {
        for threads in [1, 2, 4, 8] {
            let verifier = ParallelVerifier::new(policy(), config(), threads).with_scheduler(mode);
            assert_eq!(verifier.scheduler_mode(), mode);
            let run = verifier.try_verify_run(&net, &prop).unwrap();
            assert_eq!(
                run.verdict,
                Verdict::Verified,
                "{} @ {threads} threads",
                mode.name()
            );
            assert_eq!(
                run.stats.regions,
                sequential.stats.regions,
                "{} @ {threads} threads explored a different region count",
                mode.name()
            );
            assert_eq!(run.stats.verified_regions, sequential.stats.verified_regions);
            // The shared-queue fallback has a single deque: stealing is
            // structurally impossible there.
            if mode == SchedulerMode::SharedQueue {
                assert_eq!(run.stats.metrics.steals, 0);
                assert_eq!(run.stats.metrics.stolen_regions, 0);
            }
        }
    }
}

#[test]
fn batch_runner_matches_individual_runs() {
    let problems: Vec<(nn::Network, RobustnessProperty)> = (0..5)
        .map(|seed| {
            let net = nn::train::random_mlp(2, &[5], 2, seed);
            let prop = RobustnessProperty::new(
                Bounds::linf_ball(&[0.1, -0.1], 0.3, None),
                net.classify(&[0.1, -0.1]),
            );
            (net, prop)
        })
        .collect();
    let batch =
        charon::parallel::verify_batch(&problems, Arc::new(LinearPolicy::default()), &config(), 3);
    assert_eq!(batch.len(), problems.len());
    for ((net, prop), (verdict, elapsed)) in problems.iter().zip(batch.iter()) {
        let solo = Verifier::new(Arc::new(LinearPolicy::default()), config()).verify(net, prop);
        assert_eq!(solo.is_verified(), verdict.is_verified());
        assert_eq!(solo.is_refuted(), verdict.is_refuted());
        assert!(*elapsed <= Duration::from_secs(21));
    }
}
