//! Cross-tool consistency: the four tools must never contradict each
//! other on the same property, and their characteristic strengths and
//! weaknesses from the paper must be visible.

use std::time::Duration;

use baselines::ai2::Ai2;
use baselines::reluplex::Reluplex;
use baselines::reluval::ReluVal;
use baselines::ToolVerdict;
use charon::{RobustnessProperty, Verdict, Verifier};
use domains::Bounds;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const BUDGET: Duration = Duration::from_secs(6);

/// Enumerate all tool verdicts on one property.
fn all_verdicts(net: &nn::Network, prop: &RobustnessProperty) -> Vec<(String, ToolVerdict)> {
    let charon = {
        let mut v = Verifier::default();
        v.config_mut().timeout = BUDGET;
        match v.verify(net, prop) {
            Verdict::Verified => ToolVerdict::Verified,
            Verdict::Refuted(c) => ToolVerdict::Falsified(c.point),
            Verdict::ResourceLimit => ToolVerdict::Timeout,
        }
    };
    vec![
        ("charon".into(), charon),
        ("ai2-z".into(), Ai2::zonotope().analyze(net, prop, BUDGET)),
        (
            "ai2-b64".into(),
            Ai2::bounded64().analyze(net, prop, BUDGET),
        ),
        (
            "reluval".into(),
            ReluVal::default().analyze(net, prop, BUDGET),
        ),
        (
            "reluplex".into(),
            Reluplex::default().analyze(net, prop, BUDGET),
        ),
    ]
}

#[test]
fn no_tool_pair_contradicts() {
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..8 {
        let net = nn::train::random_mlp(3, &[7], 3, trial);
        let center: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let eps = rng.gen_range(0.05..0.5);
        let prop =
            RobustnessProperty::new(Bounds::linf_ball(&center, eps, None), net.classify(&center));
        let verdicts = all_verdicts(&net, &prop);
        let verified: Vec<&str> = verdicts
            .iter()
            .filter(|(_, v)| *v == ToolVerdict::Verified)
            .map(|(n, _)| n.as_str())
            .collect();
        let falsified: Vec<&str> = verdicts
            .iter()
            .filter(|(_, v)| matches!(v, ToolVerdict::Falsified(_)))
            .map(|(n, _)| n.as_str())
            .collect();
        assert!(
            verified.is_empty() || falsified.is_empty(),
            "trial {trial}: contradiction — verified by {verified:?}, falsified by {falsified:?}"
        );
        // Every reported counterexample must be concrete and valid.
        for (name, v) in &verdicts {
            if let ToolVerdict::Falsified(x) = v {
                assert!(
                    prop.region().contains(x),
                    "{name} counterexample outside region"
                );
                assert!(
                    nn::margin(&net.eval(x), prop.target()) <= 1e-9,
                    "{name} returned a non-violating counterexample"
                );
            }
        }
    }
}

#[test]
fn ai2_never_falsifies_reluval_never_falsifies() {
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..5 {
        let net = nn::train::random_mlp(2, &[5], 2, trial + 100);
        let center: Vec<f64> = (0..2).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let prop =
            RobustnessProperty::new(Bounds::linf_ball(&center, 0.7, None), net.classify(&center));
        assert!(!matches!(
            Ai2::zonotope().analyze(&net, &prop, BUDGET),
            ToolVerdict::Falsified(_)
        ));
        assert!(!matches!(
            ReluVal::default().analyze(&net, &prop, BUDGET),
            ToolVerdict::Falsified(_)
        ));
    }
}

#[test]
fn powerset_dominates_plain_zonotope_ai2() {
    // AI2-Bounded64 must verify everything AI2-Zonotope verifies (it is
    // strictly more precise).
    let mut rng = StdRng::seed_from_u64(31);
    for trial in 0..6 {
        let net = nn::train::random_mlp(3, &[8], 3, trial + 50);
        let center: Vec<f64> = (0..3).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let eps = rng.gen_range(0.05..0.3);
        let prop =
            RobustnessProperty::new(Bounds::linf_ball(&center, eps, None), net.classify(&center));
        let plain = Ai2::zonotope().analyze(&net, &prop, BUDGET);
        let powerset = Ai2::bounded64().analyze(&net, &prop, BUDGET);
        if plain == ToolVerdict::Verified {
            assert_eq!(
                powerset,
                ToolVerdict::Verified,
                "trial {trial}: powerset lost precision vs plain zonotope"
            );
        }
    }
}

#[test]
fn charon_decides_what_ai2_cannot() {
    // Example 3.1: AI2 with a fixed interval domain cannot verify the
    // XOR property (needs splitting), Charon can. (Our λ-relaxation
    // zonotope happens to be tight enough to verify this one directly —
    // it is tighter than the paper's split-then-join transformer — so
    // the interval domain provides the "too coarse" contrast.)
    let net = nn::samples::xor_network();
    let prop = RobustnessProperty::new(Bounds::new(vec![0.3, 0.3], vec![0.7, 0.7]), 1);
    let ai2 = Ai2::new(domains::DomainChoice::interval()).analyze(&net, &prop, BUDGET);
    assert_eq!(
        ai2,
        ToolVerdict::Unknown,
        "interval domain should be too coarse"
    );
    assert!(Verifier::default().verify(&net, &prop).is_verified());
}
