//! Brute-force oracles on tiny networks: grid-enumerate the input region
//! densely and compare every analysis against ground truth.
//!
//! Tiny dimensions make near-exhaustive checking feasible: with a 60×60
//! grid on 2-D inputs, a sound analysis can never report a margin bound
//! above the grid minimum, and the complete solver's verdict must match
//! the grid's (up to boundary effects, which the margin band excludes).

use std::time::{Duration, Instant};

use charon::{RobustnessProperty, Verdict, Verifier};
use complete::{CompleteSolver, Decision};
use domains::deeppoly::DeepPoly;
use domains::symbolic::propagate_symbolic;
use domains::{propagate, AbstractElement, Bounds, Interval, Powerset, Zonotope};

/// Dense grid minimum of the margin over a 2-D region.
fn grid_min_margin(net: &nn::Network, region: &Bounds, target: usize, steps: usize) -> f64 {
    let mut min = f64::INFINITY;
    for i in 0..=steps {
        for j in 0..=steps {
            let x = [
                region.lower()[0]
                    + (region.upper()[0] - region.lower()[0]) * i as f64 / steps as f64,
                region.lower()[1]
                    + (region.upper()[1] - region.lower()[1]) * j as f64 / steps as f64,
            ];
            min = min.min(nn::margin(&net.eval(&x), target));
        }
    }
    min
}

#[test]
fn every_domain_bounded_by_grid_truth() {
    for seed in 0..10 {
        let net = nn::train::random_mlp(2, &[6, 6], 3, seed);
        let center = [0.1, -0.2];
        let region = Bounds::linf_ball(&center, 0.5, None);
        let target = net.classify(&center);
        let truth = grid_min_margin(&net, &region, target, 60);

        let bounds = [
            (
                "interval",
                propagate(&net, Interval::from_bounds(&region)).margin_lower_bound(target),
            ),
            (
                "zonotope",
                propagate(&net, Zonotope::from_bounds(&region)).margin_lower_bound(target),
            ),
            (
                "powerset4",
                propagate(&net, Powerset::<Zonotope>::with_budget(&region, 4))
                    .margin_lower_bound(target),
            ),
            (
                "deeppoly",
                DeepPoly::analyze(&net, &region).margin_lower_bound(target),
            ),
            (
                "symbolic",
                propagate_symbolic(&net, &region).margin_lower_bound(target),
            ),
        ];
        for (name, bound) in bounds {
            assert!(
                bound <= truth + 1e-7,
                "seed {seed}: {name} bound {bound} exceeds grid truth {truth}"
            );
        }
    }
}

#[test]
fn complete_solver_matches_grid_verdict_away_from_boundary() {
    let deadline = || Instant::now() + Duration::from_secs(20);
    let mut checked = 0;
    for seed in 0..15 {
        let net = nn::train::random_mlp(2, &[5], 2, seed + 500);
        let center = [0.0, 0.0];
        let region = Bounds::linf_ball(&center, 0.45, None);
        let target = net.classify(&center);
        let truth = grid_min_margin(&net, &region, target, 80);
        // Skip near-boundary cases where grid resolution is inconclusive.
        if truth.abs() < 0.05 {
            continue;
        }
        checked += 1;
        match CompleteSolver::default().decide(&net, &region, target, deadline()) {
            Decision::Proved => {
                assert!(
                    truth > 0.0,
                    "seed {seed}: proved but grid margin {truth} < 0"
                )
            }
            Decision::Violated(x) => {
                assert!(
                    truth < 0.0,
                    "seed {seed}: violated but grid margin {truth} > 0"
                );
                assert!(nn::margin(&net.eval(&x), target) <= 0.0);
            }
            Decision::Budget => {}
        }
    }
    assert!(checked >= 5, "too few decisive oracle cases ({checked})");
}

#[test]
fn charon_matches_grid_verdict_away_from_boundary() {
    let mut verifier = Verifier::default();
    verifier.config_mut().timeout = Duration::from_secs(20);
    let mut checked = 0;
    for seed in 0..15 {
        let net = nn::train::random_mlp(2, &[6], 3, seed + 900);
        let center = [0.1, 0.1];
        let region = Bounds::linf_ball(&center, 0.4, None);
        let target = net.classify(&center);
        let truth = grid_min_margin(&net, &region, target, 80);
        if truth.abs() < 0.05 {
            continue;
        }
        checked += 1;
        let prop = RobustnessProperty::new(region, target);
        match verifier.verify(&net, &prop) {
            Verdict::Verified => {
                assert!(
                    truth > 0.0,
                    "seed {seed}: verified but grid margin {truth} < 0"
                )
            }
            Verdict::Refuted(cex) => {
                assert!(
                    truth < 0.0,
                    "seed {seed}: refuted but grid margin {truth} > 0"
                );
                assert!(cex.objective <= 1e-9);
            }
            Verdict::ResourceLimit => panic!("seed {seed}: tiny case hit budget"),
        }
    }
    assert!(checked >= 5, "too few decisive oracle cases ({checked})");
}
